"""Tests for layer objects."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    MaxPoolLayer,
    ReluLayer,
)
from repro.nn.reference import conv2d_im2col
from repro.nn.tensor import ConvShape, TensorShape


def conv_shape(**kw):
    defaults = dict(name="c", w=8, h=8, c=3, k=4, r=3, s=3, padding=1)
    defaults.update(kw)
    return ConvShape(**defaults)


class TestConvLayer:
    def test_forward_matches_reference(self, rng):
        shape = conv_shape()
        weights = rng.integers(-3, 4, size=shape.weight_shape)
        layer = ConvLayer(shape, weights)
        x = rng.integers(-8, 9, size=shape.input_shape.as_tuple())
        assert np.array_equal(layer.forward(x), conv2d_im2col(x, weights, 1, 1))

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError, match="expected weights"):
            ConvLayer(conv_shape(), np.zeros((1, 1, 1, 1), dtype=np.int64))

    def test_missing_weights(self):
        layer = ConvLayer(conv_shape())
        assert not layer.has_weights
        with pytest.raises(RuntimeError, match="no weights"):
            __ = layer.weights

    def test_input_shape_validated(self, rng):
        shape = conv_shape()
        layer = ConvLayer(shape, rng.integers(-1, 2, size=shape.weight_shape))
        with pytest.raises(ValueError, match="expected input"):
            layer.forward(np.zeros((5, 8, 8), dtype=np.int64))

    def test_output_shape(self):
        layer = ConvLayer(conv_shape())
        out = layer.output_shape(TensorShape(3, 8, 8))
        assert out.as_tuple() == (4, 8, 8)

    def test_conv_sublayers(self):
        layer = ConvLayer(conv_shape())
        assert layer.conv_sublayers() == [layer]

    def test_grouped_layer_forward(self, rng):
        shape = conv_shape(c=2, k=4, groups=2)
        weights = rng.integers(-3, 4, size=shape.weight_shape)
        layer = ConvLayer(shape, weights)
        x = rng.integers(-5, 6, size=(4, 8, 8))
        assert layer.forward(x).shape == (4, 8, 8)


class TestPoolingAndRelu:
    def test_maxpool_shape(self):
        layer = MaxPoolLayer(3, 2)
        assert layer.output_shape(TensorShape(4, 32, 32)).as_tuple() == (4, 16, 16)

    def test_avgpool_shape(self):
        layer = AvgPoolLayer(3, 2)
        assert layer.output_shape(TensorShape(4, 16, 16)).as_tuple() == (4, 8, 8)

    def test_relu_forward(self):
        layer = ReluLayer()
        assert np.array_equal(layer.forward(np.array([[-1], [2]])), [[0], [2]])

    def test_relu_shape_identity(self):
        shape = TensorShape(2, 3, 4)
        assert ReluLayer().output_shape(shape) is shape


class TestFlattenAndFc:
    def test_flatten(self, rng):
        x = rng.integers(0, 9, size=(2, 3, 4))
        layer = FlattenLayer()
        out = layer.forward(x)
        assert out.shape == (24, 1, 1)
        assert layer.output_shape(TensorShape(2, 3, 4)).as_tuple() == (24, 1, 1)

    def test_fc_forward(self, rng):
        weights = rng.integers(-3, 4, size=(5, 12))
        layer = FullyConnectedLayer(5, 12, weights)
        x = rng.integers(-5, 6, size=(12, 1, 1))
        out = layer.forward(x)
        assert out.shape == (5, 1, 1)
        assert np.array_equal(out.reshape(-1), weights.astype(np.int64) @ x.reshape(-1))

    def test_fc_as_conv_shape(self):
        layer = FullyConnectedLayer(10, 64)
        shape = layer.as_conv_shape()
        assert (shape.k, shape.c, shape.r, shape.s) == (10, 64, 1, 1)

    def test_fc_input_features_checked(self):
        layer = FullyConnectedLayer(5, 12)
        with pytest.raises(ValueError, match="input features"):
            layer.output_shape(TensorShape(11, 1, 1))

    def test_fc_weight_shape_checked(self):
        with pytest.raises(ValueError, match="expected weights"):
            FullyConnectedLayer(5, 12, np.zeros((5, 11), dtype=np.int64))
