"""Hypothesis-driven cross-validation of the analytic model.

The parametrized cross-check in test_analytic.py covers the paper's
design points; this file lets hypothesis roam the (K, C, R, U, density,
G) space freely, asserting the analytic histogram statistics equal the
per-table functional construction *everywhere* — the single most
load-bearing invariant of the reproduction.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.buffers import tile_plan
from repro.arch.config import ucnn_config
from repro.core.activation_groups import canonical_weight_order
from repro.core.hierarchical import build_filter_group_tables
from repro.nn.tensor import ConvShape
from repro.sim.analytic import ucnn_layer_aggregate


@st.composite
def layer_case(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    c = draw(st.integers(min_value=1, max_value=12))
    r = draw(st.sampled_from([1, 3]))
    u = draw(st.sampled_from([3, 5, 17]))
    density_pct = draw(st.integers(min_value=0, max_value=100))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    from repro.quant.distributions import uniform_unique_weights

    weights = uniform_unique_weights((k, c, r, r), u, density_pct / 100, rng).values
    shape = ConvShape(name="h", w=r + 2, h=r + 2, c=c, k=k, r=r, s=r)
    return weights, shape, u


def functional_totals(weights, shape, config, canonical):
    k, c, r, s = weights.shape
    plan = tile_plan(shape, config)
    ct, tiles = plan.channel_tile, plan.num_tiles
    wpad = np.zeros((k, ct * tiles, r, s), dtype=np.int64)
    wpad[:, :c] = weights
    tiled = wpad.reshape(k, tiles, ct * r * s)
    g = config.group_size
    entries = multiplies = bubbles = stalls = 0
    for start in range(0, k, g):
        for t in range(tiles):
            tables = build_filter_group_tables(
                tiled[start : start + g, t, :], canonical=canonical,
                max_group_size=config.max_group_size)
            stats = tables.stats(num_multipliers=config.num_multipliers)
            entries += stats.num_entries
            multiplies += stats.multiplies
            bubbles += stats.skip_bubbles
            stalls += stats.mult_stalls
    return entries, multiplies, bubbles, stalls


@given(layer_case())
@settings(max_examples=40, deadline=None)
def test_analytic_equals_functional_everywhere(case):
    weights, shape, u = case
    config = ucnn_config(u, 16)
    canonical = canonical_weight_order(weights)
    agg = ucnn_layer_aggregate(weights, shape, config, canonical=canonical)
    entries, multiplies, bubbles, stalls = functional_totals(weights, shape, config, canonical)
    assert agg.entries == entries
    assert agg.multiplies == multiplies
    assert agg.skip_bubbles == bubbles
    assert agg.mult_stalls == stalls


@given(layer_case())
@settings(max_examples=25, deadline=None)
def test_entries_invariant_to_design_point(case):
    """Stored entries depend only on weights and G, not on tiling."""
    weights, shape, __ = case
    k = weights.shape[0]
    g1_small = ucnn_config(64, 16)  # G=1, large L1
    agg = ucnn_layer_aggregate(weights, shape, g1_small)
    assert agg.entries == int(np.count_nonzero(weights))
