"""Tests for the analytic layer model — incl. the functional cross-check.

The cross-validation here is the linchpin of the reproduction: the
vectorized histogram statistics must agree *exactly* with per-table
construction for every count the cycle/energy models consume.
"""

import numpy as np
import pytest

from repro.arch.buffers import tile_plan
from repro.arch.config import dcnn_config, dcnn_sp_config, ucnn_config
from repro.core.activation_groups import canonical_weight_order
from repro.core.hierarchical import build_filter_group_tables
from repro.nn.tensor import ConvShape
from repro.quant.distributions import uniform_unique_weights
from repro.sim.analytic import (
    dense_layer_events,
    simulate_layer,
    ucnn_layer_aggregate,
    ucnn_layer_events,
)


def functional_aggregate(weights, shape, config, canonical):
    """Slow reference: build every (group, tile) table and sum stats."""
    k, c, r, s = weights.shape
    plan = tile_plan(shape, config)
    ct, tiles = plan.channel_tile, plan.num_tiles
    wpad = np.zeros((k, ct * tiles, r, s), dtype=np.int64)
    wpad[:, :c] = weights
    tiled = wpad.reshape(k, tiles, ct * r * s)
    g = config.group_size
    totals = dict(entries=0, multiplies=0, bubbles=0, stalls=0, adds=0)
    for start in range(0, k, g):
        for t in range(tiles):
            tables = build_filter_group_tables(
                tiled[start : start + g, t, :], canonical=canonical,
                max_group_size=config.max_group_size)
            st = tables.stats(num_multipliers=config.num_multipliers)
            gg = tables.num_filters
            inner = st.boundaries_per_level[gg - 1] + tables._early_chunk_completions()
            totals["entries"] += st.num_entries
            totals["multiplies"] += st.multiplies
            totals["bubbles"] += st.skip_bubbles
            totals["stalls"] += st.mult_stalls
            totals["adds"] += st.num_entries + (gg - 1) * inner
    return totals


@pytest.mark.parametrize("u,density", [(3, 0.5), (17, 0.9), (17, 1.0), (64, 0.65)])
def test_analytic_matches_functional(u, density, rng):
    k, c, r = int(rng.integers(2, 9)), int(rng.integers(2, 24)), int(rng.choice([1, 3]))
    weights = uniform_unique_weights((k, c, r, r), u, density, rng).values
    shape = ConvShape(name="x", w=r + 3, h=r + 3, c=c, k=k, r=r, s=r)
    config = ucnn_config(u, 16)
    canonical = canonical_weight_order(weights)
    agg = ucnn_layer_aggregate(weights, shape, config, canonical=canonical)
    ref = functional_aggregate(weights, shape, config, canonical)
    assert agg.entries == ref["entries"]
    assert agg.multiplies == ref["multiplies"]
    assert agg.skip_bubbles == ref["bubbles"]
    assert agg.mult_stalls == ref["stalls"]
    assert agg.adds_acc == ref["adds"]


def test_analytic_matches_functional_partial_group(rng):
    """K not divisible by G: the tail group runs at its true size."""
    weights = uniform_unique_weights((5, 6, 3, 3), 3, 0.8, rng).values
    shape = ConvShape(name="x", w=6, h=6, c=6, k=5, r=3, s=3)
    config = ucnn_config(3, 16)  # G = 4, so one group of 4 and one of 1
    canonical = canonical_weight_order(weights)
    agg = ucnn_layer_aggregate(weights, shape, config, canonical=canonical)
    ref = functional_aggregate(weights, shape, config, canonical)
    assert agg.entries == ref["entries"]
    assert agg.multiplies == ref["multiplies"]
    assert agg.skip_bubbles == ref["bubbles"]
    assert agg.mult_stalls == ref["stalls"]


class TestAggregateProperties:
    def test_entries_equal_union_support(self, rng):
        weights = uniform_unique_weights((4, 8, 3, 3), 17, 0.5, rng).values
        shape = ConvShape(name="x", w=8, h=8, c=8, k=4, r=3, s=3)
        config = ucnn_config(64, 16)  # G = 1
        agg = ucnn_layer_aggregate(weights, shape, config)
        assert agg.entries == int(np.count_nonzero(weights))

    def test_denser_weights_more_entries(self, rng):
        shape = ConvShape(name="x", w=8, h=8, c=16, k=8, r=3, s=3)
        config = ucnn_config(17, 16)
        sparse = uniform_unique_weights(shape.weight_shape, 17, 0.3, rng).values
        dense = uniform_unique_weights(shape.weight_shape, 17, 0.9, rng).values
        a = ucnn_layer_aggregate(sparse, shape, config)
        b = ucnn_layer_aggregate(dense, shape, config)
        assert a.entries < b.entries

    def test_multiplies_far_below_dense(self, rng):
        weights = uniform_unique_weights((8, 32, 3, 3), 17, 0.9, rng).values
        shape = ConvShape(name="x", w=8, h=8, c=32, k=8, r=3, s=3)
        # G=1 (U=64 row): multiplies per filter-tile collapse to ~U.
        config = ucnn_config(64, 16)
        agg = ucnn_layer_aggregate(weights, shape, config)
        dense_macs_per_walk = weights.size
        assert agg.multiplies < dense_macs_per_walk / 4
        # G=2 shares tables but sub-groups are smaller: still a clear win.
        agg2 = ucnn_layer_aggregate(weights, shape, ucnn_config(17, 16))
        assert agg2.multiplies < dense_macs_per_walk / 2

    def test_requires_ucnn_config(self, rng):
        shape = ConvShape(name="x", w=4, h=4, c=2, k=2, r=3, s=3, padding=1)
        with pytest.raises(ValueError, match="UCNN config"):
            ucnn_layer_aggregate(np.zeros(shape.weight_shape, dtype=np.int64), shape, dcnn_config())


class TestDenseEvents:
    def test_dcnn_multiplies_are_dense_macs(self):
        shape = ConvShape(name="x", w=8, h=8, c=4, k=8, r=3, s=3, padding=1)
        events = dense_layer_events(shape, dcnn_config(16), 0.5, 0.35)
        assert events.multiplies == shape.macs

    def test_dcnn_sp_gates_multiplies(self):
        shape = ConvShape(name="x", w=8, h=8, c=4, k=8, r=3, s=3, padding=1)
        dense = dense_layer_events(shape, dcnn_config(16), 0.5, 0.35)
        gated = dense_layer_events(shape, dcnn_sp_config(16), 0.5, 0.35)
        assert gated.cycles == dense.cycles
        assert gated.multiplies == int(round(dense.multiplies * 0.5 * 0.35))

    def test_vectorization_amortizes_input_reads(self):
        shape = ConvShape(name="x", w=8, h=8, c=4, k=8, r=3, s=3, padding=1)
        events = dense_layer_events(shape, dcnn_config(16), 1.0, 1.0)
        assert events.input_l1_reads == events.weight_l1_reads // 8


class TestUcnnEvents:
    def test_cycles_include_pipeline_drain(self, rng):
        import dataclasses
        shape = ConvShape(name="x", w=8, h=8, c=16, k=8, r=3, s=3)
        weights = uniform_unique_weights(shape.weight_shape, 17, 0.9, rng).values
        cfg = ucnn_config(17, 16)
        agg = ucnn_layer_aggregate(weights, shape, cfg)
        with_drain = ucnn_layer_events(shape, cfg, agg)
        no_drain = ucnn_layer_events(shape, dataclasses.replace(cfg, pipeline_overhead=0.0), agg)
        assert with_drain.cycles > no_drain.cycles

    def test_table_bits_scale_with_entries(self, rng):
        shape = ConvShape(name="x", w=8, h=8, c=16, k=8, r=3, s=3)
        cfg = ucnn_config(17, 16)
        sparse = uniform_unique_weights(shape.weight_shape, 17, 0.3, rng).values
        dense = uniform_unique_weights(shape.weight_shape, 17, 0.9, rng).values
        a = ucnn_layer_events(shape, cfg, ucnn_layer_aggregate(sparse, shape, cfg))
        b = ucnn_layer_events(shape, cfg, ucnn_layer_aggregate(dense, shape, cfg))
        assert a.table_bits_read < b.table_bits_read

    def test_simulate_layer_dispatch(self, rng):
        shape = ConvShape(name="x", w=8, h=8, c=8, k=4, r=3, s=3)
        weights = uniform_unique_weights(shape.weight_shape, 17, 0.9, rng).values
        events, agg = simulate_layer(shape, ucnn_config(17, 16), weights=weights)
        assert agg is not None and events.cycles > 0
        events2, agg2 = simulate_layer(shape, dcnn_config(16), weight_density=0.5)
        assert agg2 is None and events2.multiplies == shape.macs

    def test_simulate_layer_requires_inputs(self):
        shape = ConvShape(name="x", w=8, h=8, c=8, k=4, r=3, s=3)
        with pytest.raises(ValueError, match="weight tensor"):
            simulate_layer(shape, ucnn_config(17, 16))
        with pytest.raises(ValueError, match="weights or weight_density"):
            simulate_layer(shape, dcnn_config(16))
