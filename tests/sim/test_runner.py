"""Tests for network-level simulation."""

import numpy as np
import pytest

from repro.arch.config import dcnn_config, dcnn_sp_config, paper_configs, ucnn_config
from repro.nn.tensor import ConvShape
from repro.quant.distributions import uniform_unique_weights
from repro.sim.events import EventCounts
from repro.sim.runner import run_layer, simulate_network


def shapes_small():
    return [
        ConvShape(name="a", w=8, h=8, c=3, k=8, r=3, s=3, padding=1),
        ConvShape(name="b", w=8, h=8, c=8, k=8, r=3, s=3, padding=1),
    ]


def provider_for(u, density=0.5):
    def provider(shape):
        rng = np.random.default_rng(hash(shape.name) % (2**31))
        return uniform_unique_weights(shape.weight_shape, u, density, rng).values
    return provider


class TestEventCounts:
    def test_addition(self):
        a = EventCounts(cycles=1, multiplies=2)
        b = EventCounts(cycles=3, multiplies=4, adds_acc=5)
        c = a + b
        assert (c.cycles, c.multiplies, c.adds_acc) == (4, 6, 5)

    def test_scaled(self):
        assert EventCounts(cycles=3).scaled(4).cycles == 12

    def test_as_dict(self):
        d = EventCounts(cycles=1).as_dict()
        assert d["cycles"] == 1 and "psum_accesses" in d


class TestRunLayer:
    def test_dense_layer_result(self):
        result = run_layer(shapes_small()[0], dcnn_config(16), weight_density=0.5)
        assert result.energy.total_pj > 0
        assert result.aggregate is None
        assert result.weight_model.total_bits == shapes_small()[0].num_weights * 16

    def test_ucnn_layer_result(self):
        shape = shapes_small()[0]
        result = run_layer(shape, ucnn_config(17, 16), weights=provider_for(17)(shape))
        assert result.aggregate is not None
        assert result.weight_model.total_bits < shape.num_weights * 16

    def test_dcnn_sp_density_from_weights(self):
        shape = shapes_small()[0]
        weights = provider_for(17, density=0.5)(shape)
        result = run_layer(shape, dcnn_sp_config(16), weights=weights)
        nonzero = int(np.count_nonzero(weights))
        assert result.weight_model.total_bits == nonzero * (16 + 5)

    def test_dcnn_sp_without_info_raises(self):
        with pytest.raises(ValueError, match="weights or weight_density"):
            run_layer(shapes_small()[0], dcnn_sp_config(16))


class TestSimulateNetwork:
    def test_totals_are_sums(self):
        results = simulate_network(shapes_small(), dcnn_config(16), weight_density=0.5)
        assert results.cycles == sum(l.cycles for l in results.layers)
        assert results.energy.total_pj == pytest.approx(
            sum(l.energy.total_pj for l in results.layers))

    def test_first_layer_flag(self):
        results = simulate_network(shapes_small(), dcnn_config(16), weight_density=0.5)
        assert results.layers[0].dram.input_bits > 0
        assert results.layers[1].dram.input_bits == 0

    def test_find(self):
        results = simulate_network(shapes_small(), dcnn_config(16), weight_density=0.5)
        assert results.find("b").name == "b"
        with pytest.raises(KeyError):
            results.find("zzz")

    def test_model_size_aggregated(self):
        results = simulate_network(
            shapes_small(), ucnn_config(17, 16), weight_provider=provider_for(17))
        total_dense = sum(s.num_weights for s in shapes_small())
        assert results.model_size.dense_weights == total_dense

    def test_all_paper_configs_run(self):
        for cfg in paper_configs(16):
            u = cfg.num_unique or 64
            results = simulate_network(
                shapes_small(), cfg, weight_provider=provider_for(u), weight_density=0.5)
            assert results.energy.total_pj > 0
            assert results.cycles > 0

    def test_ucnn_beats_dense_on_energy(self):
        """The headline direction on a tiny network at 50% density."""
        dense = simulate_network(shapes_small(), dcnn_config(16),
                                 weight_provider=provider_for(3), weight_density=0.5)
        ucnn = simulate_network(shapes_small(), ucnn_config(3, 16),
                                weight_provider=provider_for(3), weight_density=0.5)
        assert ucnn.energy.total_pj < dense.energy.total_pj
