"""Tests for the step-by-step lane simulators."""

import numpy as np
import pytest

from repro.core.activation_groups import canonical_weight_order
from repro.core.hierarchical import build_filter_group_tables
from repro.sim.functional import DcnnLaneSimulator, UcnnLaneSimulator


class TestUcnnLane:
    def test_outputs_bit_exact(self, rng):
        for __ in range(15):
            g = int(rng.integers(1, 4))
            n = int(rng.integers(1, 40))
            filters = rng.integers(-3, 4, size=(g, n))
            window = rng.integers(-9, 10, size=n)
            lane = UcnnLaneSimulator(build_filter_group_tables(filters))
            trace = lane.run(window)
            assert np.array_equal(trace.outputs, filters @ window)

    def test_cycles_match_stats(self, rng):
        """The stepped walk must agree with the closed-form stats."""
        for __ in range(15):
            g = int(rng.integers(1, 4))
            n = int(rng.integers(1, 50))
            filters = rng.integers(-2, 3, size=(g, n))
            canonical = canonical_weight_order(np.arange(-4, 5))
            tables = build_filter_group_tables(filters, canonical=canonical)
            lane = UcnnLaneSimulator(tables)
            trace = lane.run(rng.integers(-9, 10, size=n))
            st = tables.stats()
            assert trace.cycles == st.cycles
            assert trace.entry_cycles == st.num_entries
            assert trace.bubble_cycles == st.skip_bubbles
            assert trace.stall_cycles == st.mult_stalls
            assert trace.multiplies == st.multiplies

    def test_chunked_outputs(self, rng):
        filters = np.full((2, 40), 3, dtype=np.int64)
        window = rng.integers(-9, 10, size=40)
        tables = build_filter_group_tables(filters, max_group_size=7)
        trace = UcnnLaneSimulator(tables).run(window)
        assert np.array_equal(trace.outputs, filters @ window)
        assert trace.multiplies > 2  # early MACs from chunking

    def test_multiplier_count_configurable(self, rng):
        filters = rng.integers(1, 3, size=(2, 20))  # dense non-zero: stalls
        tables = build_filter_group_tables(filters)
        one = UcnnLaneSimulator(tables, num_multipliers=1).run(np.ones(20, dtype=np.int64))
        two = UcnnLaneSimulator(tables, num_multipliers=2).run(np.ones(20, dtype=np.int64))
        assert one.cycles >= two.cycles

    def test_window_length_checked(self):
        tables = build_filter_group_tables(np.array([[1, 2]]))
        with pytest.raises(ValueError, match="window length"):
            UcnnLaneSimulator(tables).run(np.arange(5))


class TestDcnnLane:
    def test_outputs_and_cycles(self, rng):
        filters = rng.integers(-3, 4, size=(4, 25))
        window = rng.integers(-9, 10, size=25)
        trace = DcnnLaneSimulator(filters).run(window)
        assert np.array_equal(trace.outputs, filters @ window)
        assert trace.cycles == 25
        assert trace.multiplies == 4 * 25

    def test_sparsity_gates_multiplies_not_cycles(self, rng):
        filters = rng.integers(-1, 2, size=(2, 30))
        filters[:, ::2] = 0
        window = rng.integers(-9, 10, size=30)
        dense = DcnnLaneSimulator(filters, skip_zero_operands=False).run(window)
        gated = DcnnLaneSimulator(filters, skip_zero_operands=True).run(window)
        assert np.array_equal(dense.outputs, gated.outputs)
        assert gated.cycles == dense.cycles
        assert gated.multiplies < dense.multiplies

    def test_zero_activations_gated(self):
        filters = np.ones((1, 4), dtype=np.int64)
        window = np.array([0, 5, 0, 5])
        gated = DcnnLaneSimulator(filters, skip_zero_operands=True).run(window)
        assert gated.multiplies == 2

    def test_shape_checked(self):
        with pytest.raises(ValueError, match="VK"):
            DcnnLaneSimulator(np.arange(4))
