"""Execute every fenced ``python`` block in README.md and docs/*.md.

Documentation quickstarts rot silently: an API rename leaves the prose
compiling in the reader's head and failing in their shell.  This suite
extracts every fenced code block whose info string is exactly
``python`` and ``exec()``s it in a fresh namespace, so a snippet that
stops running fails CI the same day the API moves.

Conventions:

* Blocks fenced as ```` ```python ```` are executed verbatim and must be
  self-contained (imports included) and fast — they run in the lint job.
* Blocks fenced as ```` ```python no-run ```` are rendered as Python by
  GitHub but skipped here (use sparingly, for fragments that need
  context the snippet cannot carry, e.g. a hypothetical module).
* ``bash`` and unlabeled fences are never executed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documents whose python snippets must stay runnable.
DOCS = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

_FENCE = re.compile(r"^(\s*)```(.*)$")


@dataclass(frozen=True)
class Snippet:
    """One fenced code block: where it came from and what it says."""

    doc: str
    line: int  # 1-based line of the opening fence
    info: str  # the fence info string, e.g. "python" or "bash"
    code: str

    @property
    def runnable(self) -> bool:
        """True for plain ``python`` fences (``python no-run`` is skipped)."""
        return self.info == "python"


def extract_snippets(path: Path) -> list[Snippet]:
    """Parse every fenced code block out of one markdown file."""
    snippets: list[Snippet] = []
    fence_line = 0
    info: str | None = None
    indent = ""
    body: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line)
        if info is None:
            if match:
                indent, info = match.group(1), match.group(2).strip()
                fence_line, body = lineno, []
        elif match and match.group(2).strip() == "":
            code = "\n".join(ln[len(indent):] if ln.startswith(indent) else ln for ln in body)
            snippets.append(Snippet(path.name, fence_line, info, code))
            info = None
        else:
            body.append(line)
    assert info is None, f"{path.name}:{fence_line}: unclosed ``` fence"
    return snippets


ALL = [s for doc in DOCS for s in extract_snippets(doc)]
PYTHON = [s for s in ALL if s.runnable]


def test_docs_carry_runnable_python_snippets():
    """The checker must have teeth: the docs ship python quickstarts."""
    assert PYTHON, "no ```python blocks found in README.md or docs/*.md"


@pytest.mark.parametrize(
    "snippet", PYTHON, ids=[f"{s.doc}:{s.line}" for s in PYTHON]
)
def test_snippet_executes(snippet):
    """Each documented quickstart runs green against the current API."""
    namespace = {"__name__": f"doc_snippet_{snippet.doc}_{snippet.line}"}
    exec(compile(snippet.code, f"{snippet.doc}:{snippet.line}", "exec"), namespace)
