"""Property tests for the structured differ.

Three contracts the harness leans on, pinned over randomized JSON trees:

* reflexivity — ``diff(x, x)`` is empty for every canonical tree, so a
  clean regeneration can never produce a phantom drift report;
* path symmetry — ``diff(a, b)`` and ``diff(b, a)`` name exactly the
  same diverging paths (the relative comparison uses the symmetric
  ``max(|e|, |a|)`` denominator, and missing/extra swap kinds but not
  locations), so a drift report does not depend on which side was
  committed;
* epsilon boundary — a numeric pair passes a relative rule exactly when
  the symmetric relative difference is ``<= epsilon``, with divergence
  returning the moment epsilon drops below it.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regress.diffing import Rule, TolerancePolicy, diff

# Canonical JSON scalars: what survives the json round-trip in
# runner.canonicalize (no NaN/inf — references never carry them).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)

_json_trees = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=25,
)

_loose_policy = TolerancePolicy(rules=(Rule("*", "relative", 0.05),))


@settings(max_examples=150, deadline=None)
@given(_json_trees)
def test_diff_of_tree_with_itself_is_empty(tree):
    assert diff(tree, tree) == []


@settings(max_examples=150, deadline=None)
@given(_json_trees)
def test_diff_of_tree_with_itself_is_empty_under_any_policy(tree):
    assert diff(tree, tree, _loose_policy) == []


@settings(max_examples=150, deadline=None)
@given(_json_trees, _json_trees)
def test_diff_reports_symmetric_paths(a, b):
    forward = {d.path for d in diff(a, b)}
    backward = {d.path for d in diff(b, a)}
    assert forward == backward


@settings(max_examples=150, deadline=None)
@given(_json_trees, _json_trees)
def test_diff_paths_symmetric_under_relative_policy(a, b):
    forward = {d.path for d in diff(a, b, _loose_policy)}
    backward = {d.path for d in diff(b, a, _loose_policy)}
    assert forward == backward


@settings(max_examples=200, deadline=None)
@given(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
def test_relative_epsilon_boundary_is_exact(expected, actual):
    """Divergence flips exactly at the symmetric relative difference."""
    delta = abs(actual - expected)
    scale = max(abs(expected), abs(actual))
    if delta == 0.0 or scale == 0.0 or math.isinf(delta) or math.isinf(scale):
        return  # equal values pass at every epsilon; nothing to bracket
    rel = delta / scale
    at = TolerancePolicy(rules=(Rule("v", "relative", rel),))
    assert diff({"v": expected}, {"v": actual}, at) == []
    below = TolerancePolicy(rules=(Rule("v", "relative", math.nextafter(rel, 0.0)),))
    assert diff({"v": expected}, {"v": actual}, below) != []


@settings(max_examples=100, deadline=None)
@given(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_relative_epsilon_is_monotone(expected, actual, eps_a, eps_b):
    """Passing at some epsilon implies passing at every larger one."""
    lo, hi = sorted((eps_a, eps_b))
    at_lo = diff({"v": expected}, {"v": actual},
                 TolerancePolicy(rules=(Rule("v", "relative", lo),)))
    at_hi = diff({"v": expected}, {"v": actual},
                 TolerancePolicy(rules=(Rule("v", "relative", hi),)))
    if at_lo == []:
        assert at_hi == []
