"""Tests for the reference store and the check/update runner.

Ends with the harness's sharpest acceptance test: a 1-ulp perturbation
of a single compiled weight-table entry must fail ``check_one`` against
the committed engine-digest reference with a drift report naming the
experiment and the exact diverging fields.
"""

import sys
import types

import numpy as np
import pytest

from repro.engine import clear_program_cache
from repro.engine import program as engine_program
from repro.regress import (
    SPECS_BY_ID,
    ReferenceStore,
    RegressSpec,
    canonicalize,
    check_one,
    run_check,
    run_update,
    update_one,
)

FAKE_MODULE = "tests_regress_fake_experiment"


@pytest.fixture
def fake_spec(monkeypatch):
    """A tiny controllable experiment registered as an importable module."""
    module = types.ModuleType(FAKE_MODULE)
    module.payload = {"points": [{"g": 1, "speedup": 1.0}, {"g": 2, "speedup": 1.8}],
                      "total": 2}
    module.run = lambda scale="fast": module.payload
    monkeypatch.setitem(sys.modules, FAKE_MODULE, module)
    spec = RegressSpec(experiment="fake", module=FAKE_MODULE,
                       kwargs={"scale": "fast"})
    return spec, module


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ReferenceStore(tmp_path)
        path = store.save("fig99", {"density": 0.5}, {"rows": [1, 2]})
        assert path == tmp_path / "fig99.json"
        envelope = store.load("fig99")
        assert envelope["schema_version"] == 1
        assert envelope["experiment"] == "fig99"
        assert envelope["kwargs"] == {"density": 0.5}
        assert envelope["result"] == {"rows": [1, 2]}

    def test_files_are_reviewable(self, tmp_path):
        store = ReferenceStore(tmp_path)
        path = store.save("fig99", {}, {"b": 1, "a": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')  # sorted keys

    def test_bad_experiment_ids_rejected(self, tmp_path):
        store = ReferenceStore(tmp_path)
        for bad in ("", "a/b", "../x", ".hidden"):
            with pytest.raises(ValueError, match="bad experiment id"):
                store.path_for(bad)

    def test_missing_reference(self, tmp_path):
        store = ReferenceStore(tmp_path)
        assert not store.has("fig99")
        with pytest.raises(FileNotFoundError, match="regress --update"):
            store.load("fig99")

    def test_schema_version_mismatch(self, tmp_path):
        store = ReferenceStore(tmp_path)
        path = store.save("fig99", {}, {})
        payload = path.read_text().replace('"schema_version": 1', '"schema_version": 0')
        path.write_text(payload)
        with pytest.raises(ValueError, match="schema_version"):
            store.load("fig99")

    def test_experiment_claim_mismatch(self, tmp_path):
        store = ReferenceStore(tmp_path)
        ReferenceStore(tmp_path).save("other", {}, {})
        (tmp_path / "fig99.json").write_text((tmp_path / "other.json").read_text())
        with pytest.raises(ValueError, match="claims experiment"):
            store.load("fig99")

    def test_non_envelope_rejected(self, tmp_path):
        (tmp_path / "fig99.json").write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not a reference envelope"):
            ReferenceStore(tmp_path).load("fig99")

    def test_ids_sorted(self, tmp_path):
        store = ReferenceStore(tmp_path)
        for name in ("zeta", "alpha"):
            store.save(name, {}, {})
        assert store.ids() == ["alpha", "zeta"]

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REFERENCES_DIR", str(tmp_path))
        assert ReferenceStore().root == tmp_path


class TestCanonicalize:
    def test_tuples_and_numpy_lowered(self):
        value = canonicalize({"t": (1, 2), "f": np.float64(0.5), "i": np.int64(3),
                              "a": np.arange(3)})
        assert value == {"t": [1, 2], "f": 0.5, "i": 3, "a": [0, 1, 2]}

    def test_fixed_point(self):
        value = {"rows": [[1, 2.5], {"k": "v"}]}
        assert canonicalize(canonicalize(value)) == canonicalize(value)


class TestRunner:
    def test_missing_reference_outcome(self, tmp_path, fake_spec):
        spec, _ = fake_spec
        outcome = check_one(spec, ReferenceStore(tmp_path))
        assert outcome.status == "missing" and not outcome.ok
        assert "--update" in outcome.message

    def test_update_then_check_ok(self, tmp_path, fake_spec):
        spec, _ = fake_spec
        store = ReferenceStore(tmp_path)
        assert update_one(spec, store).status == "updated"
        assert update_one(spec, store).status == "unchanged"
        outcome = check_one(spec, store)
        assert outcome.status == "ok" and outcome.ok and outcome.report.clean

    def test_drift_names_path(self, tmp_path, fake_spec):
        spec, module = fake_spec
        store = ReferenceStore(tmp_path)
        update_one(spec, store)
        module.payload = {"points": [{"g": 1, "speedup": 1.0},
                                     {"g": 2, "speedup": 2.4}], "total": 2}
        outcome = check_one(spec, store)
        assert outcome.status == "drift" and not outcome.ok
        (divergence,) = outcome.report.divergences
        assert divergence.path == "points[1].speedup"
        assert "points[1].speedup" in outcome.render()

    def test_kwargs_pin_mismatch_is_an_error(self, tmp_path, fake_spec):
        spec, _ = fake_spec
        store = ReferenceStore(tmp_path)
        update_one(spec, store)
        repinned = RegressSpec(experiment=spec.experiment, module=spec.module,
                               kwargs={"scale": "paper"})
        outcome = check_one(repinned, store)
        assert outcome.status == "error"
        assert "pinned kwargs changed" in outcome.message

    def test_exploding_experiment_is_an_error(self, tmp_path, fake_spec):
        spec, module = fake_spec
        store = ReferenceStore(tmp_path)
        update_one(spec, store)

        def boom(scale="fast"):
            raise RuntimeError("parity violated")

        module.run = boom
        outcome = check_one(spec, store)
        assert outcome.status == "error"
        assert "RuntimeError: parity violated" in outcome.message

    def test_summary_counts_and_exit_signal(self, tmp_path, fake_spec):
        spec, module = fake_spec
        store = ReferenceStore(tmp_path)
        assert run_update([spec], store).ok
        clean = run_check([spec], store)
        assert clean.ok and clean.counts() == {"ok": 1}
        module.payload = {"points": [], "total": 0}
        drifted = run_check([spec], store)
        assert not drifted.ok and drifted.counts() == {"drift": 1}
        assert "regress: 1 drift" in drifted.render()

    def test_regenerate_disables_ambient_result_cache(self, tmp_path, fake_spec):
        """Checks must recompute: a cached ambient runtime can't leak in."""
        from repro.regress import regenerate
        from repro.runtime import ResultCache, Runtime, get_runtime, using_runtime

        spec, module = fake_spec
        seen = {}

        def observing_run(scale="fast"):
            seen["cache"] = get_runtime().cache
            return {"ok": True}

        module.run = observing_run
        ambient = Runtime(workers=0, cache=ResultCache(tmp_path / "cache"))
        with using_runtime(ambient):
            regenerate(spec)
        assert seen["cache"] is None


@pytest.fixture
def pristine_program_cache():
    """Run against freshly compiled programs, and leave none behind."""
    clear_program_cache()
    yield
    clear_program_cache()


class TestEngineDigestAcceptance:
    def test_committed_reference_checks_clean(self, pristine_program_cache):
        outcome = check_one(SPECS_BY_ID["engine-digest"], ReferenceStore())
        assert outcome.status == "ok", outcome.render()

    def test_one_ulp_weight_perturbation_drifts_by_name(
            self, monkeypatch, pristine_program_cache):
        real_compile = engine_program.compile_layer

        def perturbed_compile(groups, key=None):
            program = real_compile(groups, key=key)
            for p in program.passes:
                nonzero = np.flatnonzero(p.weights)
                if nonzero.size:
                    index = np.unravel_index(nonzero[0], p.weights.shape)
                    p.weights[index] += 1  # one ulp at integer scale
                    break
            return program

        monkeypatch.setattr(engine_program, "compile_layer", perturbed_compile)
        clear_program_cache()

        outcome = check_one(SPECS_BY_ID["engine-digest"], ReferenceStore())
        assert outcome.status == "drift"
        assert outcome.report.experiment == "engine-digest"
        paths = {d.path for d in outcome.report.divergences}
        assert any(p.endswith(".weights_sum") for p in paths)
        assert any(p.endswith(".output_sum") for p in paths)
        assert any(p.endswith(".output_sha256") for p in paths)
        rendered = outcome.render(limit=50)
        assert "engine-digest: DRIFT" in rendered
        assert "output_sha256" in rendered
