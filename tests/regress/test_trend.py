"""Tests for the bench trend analyzer.

The acceptance scenario lives here: a fabricated ``BENCH_kernels.json``
trajectory whose newest run is 25% slower than the trailing median must
trip the trend gate even though the implied speedup still clears the
static 20x floor the nightly bench asserts.
"""

import json

import pytest

from repro.regress.trend import (
    Metric,
    TrendAlert,
    analyze_trend,
    extract_metrics,
    load_payloads,
    render_alerts,
)

#: Mirrors ENGINE_MIN_SPEEDUP in benchmarks/bench_kernels.py — the
#: static floor the trend gate must out-detect.
ENGINE_STATIC_FLOOR = 20.0


def kernels_payload(mean_s: float, name: str = "test_bench_engine") -> dict:
    """A minimal pytest-benchmark-shaped BENCH_kernels.json payload."""
    return {
        "machine_info": {"node": "ci-host"},
        "benchmarks": [{"name": name, "stats": {"mean": mean_s, "rounds": 1}}],
    }


def serve_payload(p99_ms: float, shed: int = 0, warm_speedup: float = 8.0) -> dict:
    """An enveloped serve payload like cli bench-serve --json writes."""
    return {
        "schema_version": 1,
        "kind": "serve",
        "smoke": True,
        "data": {
            "warm": {"requests": 100, "shed": shed, "p50_ms": p99_ms / 2,
                     "p99_ms": p99_ms, "throughput_rps": 1000.0},
            "warm_speedup": warm_speedup,
        },
    }


class TestExtractMetrics:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown bench kind"):
            extract_metrics("gpu", {})

    def test_kernels_reads_pytest_benchmark_means(self):
        (m,) = extract_metrics("kernels", kernels_payload(1.5e-3))
        assert m == Metric("kernels.test_bench_engine.mean_s", 1.5e-3, "lower")

    def test_serve_unwraps_envelope_and_gates_p99_and_shed(self):
        metrics = {m.name: m for m in extract_metrics("serve", serve_payload(2.0, shed=5))}
        assert metrics["serve.warm.p99_ms"].value == 2.0
        assert metrics["serve.warm.p99_ms"].better == "lower"
        assert metrics["serve.warm.shed_rate"].value == pytest.approx(0.05)
        assert metrics["serve.warm.shed_rate"].better == "lower"
        assert metrics["serve.warm_speedup"].better == "higher"

    def test_tiers_derives_speedup_vs_cold(self):
        payload = {"cold": {"elapsed_s": 10.0}, "local_warm": {"elapsed_s": 2.0}}
        metrics = {m.name: m.value for m in extract_metrics("tiers", payload)}
        assert metrics["tiers.local_warm.speedup_vs_cold"] == pytest.approx(5.0)

    def test_cluster_reads_per_pass_stats(self):
        payload = {"steady": {"stats": {"requests": 40, "shed": 0, "p99_ms": 3.0,
                                        "throughput_rps": 500.0}}}
        names = {m.name for m in extract_metrics("cluster", payload)}
        assert "cluster.steady.p99_ms" in names
        assert "cluster.steady.shed_rate" in names


class TestAnalyzeTrend:
    def test_25pct_kernel_slowdown_flagged_while_static_floor_passes(self):
        """The acceptance scenario: trajectory decay the floor misses."""
        numpy_baseline_s = 65e-3  # dense baseline the speedup is quoted against
        history = [kernels_payload(1.00e-3) for _ in range(5)]
        history.append(kernels_payload(1.25e-3))  # 25% slower than the median

        # The static floor would NOT catch this: 65ms / 1.25ms = 52x >= 20x.
        implied_speedup = numpy_baseline_s / 1.25e-3
        assert implied_speedup >= ENGINE_STATIC_FLOOR

        (alert,) = analyze_trend("kernels", history)
        assert alert.metric == "kernels.test_bench_engine.mean_s"
        assert alert.change == pytest.approx(0.25)
        assert alert.baseline == pytest.approx(1.00e-3)
        assert "25% worse" in alert.render()

    def test_within_threshold_is_quiet(self):
        history = [kernels_payload(1.00e-3) for _ in range(5)]
        history.append(kernels_payload(1.15e-3))  # 15% < default 20%
        assert analyze_trend("kernels", history) == []

    def test_improvement_is_quiet(self):
        history = [kernels_payload(1.00e-3) for _ in range(5)]
        history.append(kernels_payload(0.40e-3))
        assert analyze_trend("kernels", history) == []

    def test_needs_min_history(self):
        history = [kernels_payload(1.0e-3), kernels_payload(2.0e-3)]
        assert analyze_trend("kernels", history) == []  # one prior run only

    def test_median_shrugs_off_one_noisy_night(self):
        history = [kernels_payload(v) for v in
                   (1.0e-3, 1.0e-3, 5.0e-3, 1.0e-3, 1.0e-3)]
        history.append(kernels_payload(1.1e-3))
        assert analyze_trend("kernels", history) == []

    def test_window_drops_ancient_history(self):
        # Old fast runs outside the window must not drag the median down.
        history = [kernels_payload(0.5e-3)] * 10 + [kernels_payload(1.0e-3)] * 7
        history.append(kernels_payload(1.1e-3))
        assert analyze_trend("kernels", history, window=7) == []

    def test_serve_p99_regression_is_first_class(self):
        history = [serve_payload(2.0) for _ in range(4)]
        history.append(serve_payload(3.0))  # p99 rose 50%
        alerts = {a.metric for a in analyze_trend("serve", history)}
        assert "serve.warm.p99_ms" in alerts

    def test_shed_rate_regression_from_zero_baseline(self):
        history = [serve_payload(2.0, shed=0) for _ in range(4)]
        history.append(serve_payload(2.0, shed=10))
        (alert,) = analyze_trend("serve", history)
        assert alert.metric == "serve.warm.shed_rate"
        assert alert.change == 1.0

    def test_higher_is_better_direction(self):
        history = [serve_payload(2.0, warm_speedup=8.0) for _ in range(4)]
        history.append(serve_payload(2.0, warm_speedup=5.0))  # fell 37.5%
        alerts = {a.metric: a for a in analyze_trend("serve", history)}
        assert alerts["serve.warm_speedup"].change == pytest.approx(0.375)
        assert "fell" in alerts["serve.warm_speedup"].render()

    def test_new_metric_without_history_is_quiet(self):
        history = [kernels_payload(1.0e-3) for _ in range(4)]
        history.append(kernels_payload(9.0e-3, name="brand_new_bench"))
        assert analyze_trend("kernels", history) == []

    def test_custom_threshold(self):
        history = [kernels_payload(1.00e-3) for _ in range(5)]
        history.append(kernels_payload(1.15e-3))
        assert analyze_trend("kernels", history, threshold=0.10) != []


class TestIO:
    def test_load_payloads_preserves_order(self, tmp_path):
        paths = []
        for i, mean in enumerate((1.0e-3, 1.1e-3)):
            p = tmp_path / f"run{i}.json"
            p.write_text(json.dumps(kernels_payload(mean)))
            paths.append(p)
        loaded = load_payloads(paths)
        assert [b["benchmarks"][0]["stats"]["mean"] for b in loaded] == [1.0e-3, 1.1e-3]

    def test_render_alerts(self):
        assert render_alerts("kernels", []) == "trend[kernels]: ok"
        alert = TrendAlert("kernels.x.mean_s", 1.25e-3, 1.0e-3, 0.25, "lower")
        text = render_alerts("kernels", [alert])
        assert "1 regression(s)" in text and "kernels.x.mean_s" in text
