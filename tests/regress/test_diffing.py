"""Unit tests for the structured differ and its tolerance policies."""

import math

import pytest

from repro.regress.diffing import (
    DEFAULT_POLICY,
    HOST_DEPENDENT_RULES,
    DriftReport,
    Rule,
    TolerancePolicy,
    diff,
    render_reports,
)


class TestRule:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown rule kind"):
            Rule("a.b", "fuzzy")

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError, match="negative epsilon"):
            Rule("a.b", "relative", -0.1)

    def test_star_crosses_boundaries(self):
        rule = Rule("*elapsed_s", "ignore")
        assert rule.matches("elapsed_s")
        assert rule.matches("cold.elapsed_s")
        assert rule.matches("passes[3].deep.elapsed_s")
        assert not rule.matches("elapsed_s_total")

    def test_star_matches_indices(self):
        rule = Rule("points[*].density", "relative", 0.1)
        assert rule.matches("points[0].density")
        assert rule.matches("points[17].density")
        assert not rule.matches("points[0].width")

    def test_fullmatch_not_prefix(self):
        assert not Rule("a.b").matches("a.b.c")


class TestPolicy:
    def test_first_match_wins(self):
        policy = TolerancePolicy(rules=(
            Rule("x", "relative", 0.5),
            Rule("*", "exact"),
        ))
        assert policy.rule_for("x").kind == "relative"
        assert policy.rule_for("y").kind == "exact"

    def test_with_rules_prepends(self):
        base = TolerancePolicy(rules=(Rule("*", "exact"),))
        override = base.with_rules(Rule("x", "ignore"))
        assert override.rule_for("x").kind == "ignore"
        assert base.rule_for("x").kind == "exact"

    def test_no_match_is_none(self):
        assert TolerancePolicy().rule_for("anything") is None


class TestDiffStructure:
    def test_identical_trees_clean(self):
        tree = {"a": [1, 2.5, {"b": "s", "c": None, "d": True}], "e": {}}
        assert diff(tree, tree) == []

    def test_missing_key(self):
        (d,) = diff({"a": 1, "b": 2}, {"a": 1})
        assert d.path == "b" and d.kind == "missing" and d.expected == 2
        assert "missing from regenerated" in d.render()

    def test_extra_key(self):
        (d,) = diff({"a": 1}, {"a": 1, "b": 2})
        assert d.path == "b" and d.kind == "extra" and d.actual == 2
        assert "not in reference" in d.render()

    def test_nested_path_names_full_location(self):
        divs = diff({"rows": [{"u": 3}]}, {"rows": [{"u": 4}]})
        assert [d.path for d in divs] == ["rows[0].u"]

    def test_list_length_mismatch_reports_type_and_tail(self):
        divs = diff({"xs": [1, 2, 3]}, {"xs": [1]})
        kinds = {(d.path, d.kind) for d in divs}
        assert ("xs", "type") in kinds
        assert ("xs[1]", "missing") in kinds and ("xs[2]", "missing") in kinds

    def test_shape_mismatch_is_type_divergence(self):
        (d,) = diff({"a": [1]}, {"a": {"0": 1}})
        assert d.kind == "type" and d.path == "a"

    def test_bool_never_compares_as_number(self):
        (d,) = diff({"flag": True}, {"flag": 1})
        assert d.kind == "type"

    def test_string_mismatch(self):
        (d,) = diff("deadbeef", "cafebabe")
        assert d.path == "" and d.kind == "value"
        assert "<root>" in d.render()


class TestDiffNumbers:
    def test_ints_default_exact(self):
        assert diff({"n": 7}, {"n": 7}) == []
        (d,) = diff({"n": 7}, {"n": 8})
        assert d.kind == "value" and d.detail == "exact rule"

    def test_floats_default_tiny_relative(self):
        # 1e-9 default relative epsilon absorbs last-ulp noise only.
        assert diff({"x": 1.0}, {"x": 1.0 + 1e-12}) == []
        assert diff({"x": 1.0}, {"x": 1.0 + 1e-6}) != []

    def test_int_float_pair_judged_as_float(self):
        assert diff({"x": 1}, {"x": 1.0}) == []

    def test_relative_epsilon_boundary(self):
        policy = TolerancePolicy(rules=(Rule("v", "relative", 0.1),))
        # Symmetric denominator: |110-100| / max(100, 110) ~= 0.0909.
        assert diff({"v": 100.0}, {"v": 110.0}, policy) == []
        assert diff({"v": 100.0}, {"v": 112.0}, policy) != []

    def test_relative_exact_at_epsilon_passes(self):
        policy = TolerancePolicy(rules=(Rule("v", "relative", 0.25),))
        assert diff({"v": 4.0}, {"v": 3.0}, policy) == []  # rel == 0.25

    def test_absolute_rule(self):
        policy = TolerancePolicy(rules=(Rule("v", "absolute", 0.5),))
        assert diff({"v": 10.0}, {"v": 10.4}, policy) == []
        (d,) = diff({"v": 10.0}, {"v": 11.0}, policy)
        assert "abs eps" in d.detail

    def test_both_zero_agree_under_relative(self):
        policy = TolerancePolicy(rules=(Rule("v", "relative", 0.0),))
        assert diff({"v": 0.0}, {"v": 0.0}, policy) == []
        assert diff({"v": 0.0}, {"v": -0.0}, policy) == []

    def test_nan_pair_agrees_nan_number_diverges(self):
        assert diff({"x": math.nan}, {"x": math.nan}) == []
        (d,) = diff({"x": math.nan}, {"x": 1.0})
        assert d.detail == "NaN vs number"

    def test_infinity(self):
        assert diff({"x": math.inf}, {"x": math.inf}) == []
        (d,) = diff({"x": math.inf}, {"x": 1e308})
        assert d.detail == "infinity mismatch"


class TestIgnoreRules:
    def test_ignored_value_divergence(self):
        policy = TolerancePolicy(rules=(Rule("*elapsed_s", "ignore"),))
        assert diff({"elapsed_s": 1.0, "n": 3},
                    {"elapsed_s": 9.0, "n": 3}, policy) == []

    def test_ignored_one_sided_paths(self):
        policy = TolerancePolicy(rules=(Rule("*hostname*", "ignore"),))
        assert diff({"hostname": "a"}, {}, policy) == []
        assert diff({}, {"hostname": "b"}, policy) == []

    def test_ignore_covers_subtrees(self):
        policy = TolerancePolicy(rules=(Rule("*machine_info*", "ignore"),))
        assert diff({"machine_info": {"cpu": "x"}},
                    {"machine_info": {"cpu": "y", "os": "z"}}, policy) == []

    def test_host_dependent_rules_cover_bench_fields(self):
        policy = DEFAULT_POLICY.with_rules(*HOST_DEPENDENT_RULES)
        ref = {"p99_ms": 1.2, "throughput_rps": 900.0, "shed": 0, "datetime": "x"}
        new = {"p99_ms": 5.0, "throughput_rps": 100.0, "shed": 0, "datetime": "y"}
        assert diff(ref, new, policy) == []
        # But structural fields under the same policy still gate.
        assert diff(ref, {**new, "shed": 3}, policy) != []


class TestReportRendering:
    def test_clean_report(self):
        report = DriftReport("fig11")
        assert report.clean
        assert report.render() == "fig11: ok"

    def test_drift_report_names_experiment_and_paths(self):
        divs = tuple(diff({"a": 1}, {"a": 2}))
        report = DriftReport("fig11", divs)
        text = report.render()
        assert "fig11: DRIFT" in text and "a: expected 1 != actual 2" in text

    def test_render_limit_truncates(self):
        divs = tuple(diff({str(i): i for i in range(30)},
                          {str(i): i + 1 for i in range(30)}))
        text = DriftReport("x", divs).render(limit=5)
        assert "... and 25 more" in text

    def test_render_reports_joins(self):
        text = render_reports([DriftReport("a"), DriftReport("b")])
        assert text == "a: ok\nb: ok"
