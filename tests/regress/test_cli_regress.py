"""End-to-end tests for the ``repro regress`` CLI surface."""

import json

import pytest

from repro.cli import main
from repro.regress.specs import resolve_ids


def _kernels_run(mean_s: float) -> dict:
    return {"benchmarks": [{"name": "bench_engine", "stats": {"mean": mean_s}}]}


def _write_history(tmp_path, means):
    paths = []
    for i, mean in enumerate(means):
        p = tmp_path / f"night{i}.json"
        p.write_text(json.dumps(_kernels_run(mean)))
        paths.append(str(p))
    return paths


class TestSelection:
    def test_resolve_all(self):
        specs = resolve_ids()
        assert [s.experiment for s in specs][:2] == ["fig03", "fig09"]
        assert len(specs) == 14

    def test_resolve_smoke_subset(self):
        specs = resolve_ids(smoke=True)
        assert {s.experiment for s in specs} == {"tab02", "engine-digest"}

    def test_resolve_only_keeps_registry_order(self):
        specs = resolve_ids(only="fig11,fig03")
        assert [s.experiment for s in specs] == ["fig03", "fig11"]

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment id"):
            resolve_ids(only="fig03,fig99")


class TestRegressCommand:
    def test_check_and_update_conflict(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["regress", "--check", "--update"])

    def test_bench_files_need_trend(self, tmp_path):
        (path,) = _write_history(tmp_path, [1.0e-3])
        with pytest.raises(SystemExit, match="only make sense with --trend"):
            main(["regress", path])

    def test_trend_needs_files(self):
        with pytest.raises(SystemExit, match="needs BENCH"):
            main(["regress", "--trend", "kernels"])

    def test_list_reports_reference_state(self, tmp_path, capsys):
        assert main(["regress", "--list", "--references", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "NO REFERENCE" in out and "engine-digest" in out

    def test_check_missing_reference_fails(self, tmp_path, capsys):
        refs = str(tmp_path / "refs")
        code = main(["regress", "--check", "--only", "tab02", "--references", refs])
        assert code == 1
        assert "missing" in capsys.readouterr().out

    def test_update_check_report_cycle(self, tmp_path, capsys):
        refs = str(tmp_path / "refs")
        base = ["regress", "--only", "tab02", "--references", refs]
        assert main(base + ["--update"]) == 0
        assert "1 updated" in capsys.readouterr().out
        assert main(base + ["--update"]) == 0
        assert "1 unchanged" in capsys.readouterr().out
        report_file = tmp_path / "drift.txt"
        assert main(base + ["--check", "--report", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "tab02: ok" in out
        assert "tab02: ok" in report_file.read_text()


class TestTrendCommand:
    def test_steady_trajectory_passes(self, tmp_path, capsys):
        paths = _write_history(tmp_path, [1.0e-3] * 5 + [1.05e-3])
        assert main(["regress", "--trend", "kernels", *paths]) == 0
        assert "trend[kernels]: ok" in capsys.readouterr().out

    def test_regression_fails_with_named_metric(self, tmp_path, capsys):
        paths = _write_history(tmp_path, [1.0e-3] * 5 + [1.3e-3])
        assert main(["regress", "--trend", "kernels", *paths]) == 1
        out = capsys.readouterr().out
        assert "kernels.bench_engine.mean_s" in out and "worse" in out

    def test_threshold_flag(self, tmp_path):
        paths = _write_history(tmp_path, [1.0e-3] * 5 + [1.1e-3])
        assert main(["regress", "--trend", "kernels", *paths]) == 0
        assert main(["regress", "--trend", "kernels", "--threshold", "0.05", *paths]) == 1
