"""Tests for the weight-repetition analysis (Figure 3 machinery)."""

import numpy as np
import pytest

from repro.analysis.repetition import layer_repetition, network_repetition
from repro.quant.distributions import inq_like_weights


class TestLayerRepetition:
    def test_known_counts(self):
        # Two filters: [5,5,0,3] and [7,7,7,7].
        weights = np.array([[5, 5, 0, 3], [7, 7, 7, 7]])
        rep = layer_repetition("t", weights)
        # Filter 1: nonzero avg = (2 + 1)/2 = 1.5; filter 2: 4.
        assert rep.nonzero_mean == pytest.approx((1.5 + 4) / 2)
        assert rep.zero_mean == pytest.approx(0.5)
        assert rep.filter_size == 4

    def test_std_across_filters(self):
        weights = np.array([[1, 1, 1, 1], [1, 2, 3, 4]])
        rep = layer_repetition("t", weights)
        assert rep.nonzero_std > 0

    def test_multiply_savings_positive(self, rng):
        weights = inq_like_weights((8, 16, 3, 3), density=0.9, rng=rng).values
        rep = layer_repetition("t", weights)
        assert rep.multiply_savings > 5  # 144 weights, <= 16 nonzero groups

    def test_pigeonhole_floor(self, rng):
        """Filter size >> U guarantees repetition (Section II-B)."""
        weights = inq_like_weights((4, 256, 3, 3), density=0.9, rng=rng).values
        rep = layer_repetition("t", weights)
        assert rep.nonzero_mean >= (2304 * 0.9 / 16) * 0.5

    def test_requires_filter_axis(self):
        with pytest.raises(ValueError):
            layer_repetition("t", np.array([1, 2, 3]))

    def test_network_repetition(self, rng):
        reps = network_repetition([
            ("a", rng.integers(-2, 3, size=(2, 8))),
            ("b", rng.integers(-2, 3, size=(3, 8))),
        ])
        assert [r.name for r in reps] == ["a", "b"]
