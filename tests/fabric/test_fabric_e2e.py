"""End-to-end fabric tests: the ISSUE acceptance criteria, in-process.

One FrontendHandle plus WorkerNodes (thread-mode servers) on
localhost exercise the real wire path: auth -> admission -> ring
routing -> forward -> serve endpoint.  Worker "kills" here stop the
serve socket and the membership agent without sending ``_leave`` —
the TCP-level signature of a SIGKILL.  (Real subprocess SIGKILLs run
in CI's cluster-smoke job and ``benchmarks/bench_cluster.py``.)
"""

import json
import threading
import time

import pytest

from repro.fabric import FrontendConfig, FrontendHandle, WorkerNode
from repro.serve import ServeClient, ServeConfig, register
from repro.serve.endpoints import network_forward, runtime_point
from repro.serve.protocol import to_jsonable

SECRET = "fabric-e2e-secret"


@register("fabric_sleep")
def fabric_sleep(seconds: float = 0.1, tag: int = 0) -> int:
    """Test endpoint: hold an admission slot for a while."""
    time.sleep(seconds)
    return tag


def worker_config(tmp_path, name: str, **overrides) -> ServeConfig:
    defaults = dict(port=0, workers=2, mode="thread", max_delay_ms=1.0,
                    cache_dir=str(tmp_path / name / "cache"), auth_secret=SECRET)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def kill_worker(worker: WorkerNode) -> None:
    """Die like SIGKILL: no ``_leave``, heartbeats just stop."""
    worker._stop.set()
    if worker._agent is not None:
        worker._agent.join()
        worker._agent = None
    worker.handle.stop()


@pytest.fixture
def cluster(tmp_path):
    """1 front-end + 2 workers sharing a secret; yields (fe, workers)."""
    fe = FrontendHandle(FrontendConfig(
        port=0, heartbeat_timeout=0.6, auth_secret=SECRET))
    fe.start()
    workers = []
    try:
        for i in range(2):
            worker = WorkerNode(worker_config(tmp_path, f"w{i}"),
                                "127.0.0.1", fe.port, worker_id=f"w{i}")
            workers.append(worker.start())
        yield fe, workers
    finally:
        for worker in workers:
            try:
                worker.stop()
            except Exception:
                pass
        fe.stop()


def wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(message)


class TestParity:
    def test_forwarded_answers_match_direct_calls(self, cluster):
        """Routing through the fabric must not change a single bit."""
        fe, _ = cluster
        cases = [
            ("runtime_point", dict(network="lenet", layer_index=0,
                                   group_size=2, density=0.5, num_unique=17)),
            ("runtime_point", dict(network="lenet", layer_index=1,
                                   group_size=4, density=0.25, num_unique=33)),
            ("network_forward", dict(c=4, size=8, k1=4, k2=4, classes=6,
                                     u=9, batch=2, seed=3)),
        ]
        direct = {runtime_point.__name__: runtime_point,
                  network_forward.__name__: network_forward}
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            for name, kwargs in cases:
                response = client.send(name, kwargs)
                assert response.ok, response.error
                assert response.worker in ("w0", "w1")
                expected = json.loads(json.dumps(to_jsonable(direct[name](**kwargs))))
                assert response.value == expected

    def test_same_key_sticks_to_one_worker_and_hits_its_cache(self, cluster):
        fe, _ = cluster
        kwargs = dict(network="lenet", layer_index=0, group_size=2,
                      density=0.5, num_unique=17)
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            first = client.send("runtime_point", kwargs)
            second = client.send("runtime_point", kwargs)
        assert first.ok and second.ok
        assert first.worker == second.worker
        assert second.cached and second.value == first.value

    def test_control_plane_visible_to_clients(self, cluster):
        fe, _ = cluster
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            members = client.send("_members", {})
            assert sorted(w["worker_id"] for w in members.value["workers"]) == ["w0", "w1"]
            stats = client.send("_stats", {})
            assert stats.value["membership"]["ring_nodes"] == ["w0", "w1"]
            assert client.send("ping", {"payload": "hi"}).value == {"pong": "hi"}


class TestFailover:
    def test_kill_reroutes_within_a_heartbeat_and_loses_no_acked_request(
            self, cluster):
        """The headline guarantee: a SIGKILL mid-load is invisible to
        clients — every request that gets an ack got a real answer."""
        fe, workers = cluster
        results: list = []
        errors: list = []

        def drive(n: int = 40) -> None:
            with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                for i in range(n):
                    response = client.send("runtime_point", dict(
                        network="lenet", layer_index=i % 3, group_size=2,
                        density=0.5, num_unique=17 + i))
                    (results if response.ok else errors).append(response)
                    time.sleep(0.01)

        driver = threading.Thread(target=drive)
        driver.start()
        time.sleep(0.15)  # let load reach both workers
        killed_at = time.monotonic()
        kill_worker(workers[0])
        # Reroute within one heartbeat interval: the very next forward
        # to the dead worker eagerly evicts and retries, so the fabric
        # heals as fast as traffic arrives — well inside the timeout.
        wait_until(lambda: fe.frontend.membership.get("w0") is None,
                   timeout=fe.config.heartbeat_timeout,
                   message="dead worker not evicted within one heartbeat timeout")
        assert time.monotonic() - killed_at <= fe.config.heartbeat_timeout
        driver.join()
        # Zero lost acked requests: every single response was ok, and
        # every response carried a real value from a live worker.
        assert not errors, [r.error for r in errors]
        assert len(results) == 40
        assert all(r.value is not None for r in results)
        # Post-kill traffic all landed on the survivor.
        stats = fe.stats()
        assert stats["membership"]["ring_nodes"] == ["w1"]
        assert stats["forward_errors"] >= 1  # the eager eviction happened

    def test_silently_dead_worker_is_reaped_without_traffic(self, cluster):
        """No requests in flight: the heartbeat reaper must notice."""
        fe, workers = cluster
        kill_worker(workers[1])
        wait_until(lambda: fe.frontend.membership.get("w1") is None,
                   timeout=3 * fe.config.heartbeat_timeout,
                   message="reaper never evicted the silent worker")
        assert fe.stats()["membership"]["eviction_reasons"] == {"heartbeat": 1}

    def test_all_workers_dead_is_a_clean_503(self, cluster):
        fe, workers = cluster
        for worker in workers:
            kill_worker(worker)
        wait_until(lambda: len(fe.frontend.membership) == 0,
                   timeout=3 * fe.config.heartbeat_timeout,
                   message="fleet never drained")
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            response = client.send("runtime_point", dict(network="lenet"))
        assert not response.ok and response.status == 503
        assert "no live workers" in response.error


class TestShedding:
    def test_overload_sheds_low_before_high(self, tmp_path):
        """Saturate a small front-end with slow work: low-priority is
        refused while high-priority still gets slots and answers."""
        fe = FrontendHandle(FrontendConfig(
            port=0, heartbeat_timeout=0.6, max_inflight=4, auth_secret=SECRET))
        fe.start()
        worker = WorkerNode(
            worker_config(tmp_path, "w0", cache_enabled=False, workers=8),
            "127.0.0.1", fe.port, worker_id="w0")
        worker.start()
        try:
            hold_results: list = []

            def hold(tag: int) -> None:
                with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                    hold_results.append(client.send(
                        "fabric_sleep", {"seconds": 1.0, "tag": tag},
                        priority="high"))

            holders = [threading.Thread(target=hold, args=(i,)) for i in range(3)]
            for t in holders:
                t.start()
            # 3 in flight: past the low ladder rung (50% of 4 = 2) but
            # under both the normal rung (3) and the high ceiling (4).
            wait_until(lambda: fe.frontend.admission.inflight == 3,
                       timeout=5.0, message="holders never got in flight")
            with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                low = client.send("fabric_sleep", {"seconds": 0.01, "tag": 90},
                                  priority="low")
                assert low.shed and low.status == 503 and not low.ok
                assert "shed" in low.error and "low" in low.error
                high = client.send("fabric_sleep", {"seconds": 0.01, "tag": 91},
                                   priority="high")
                assert high.ok and not high.shed and high.value == 91
            for t in holders:
                t.join()
            assert all(r.ok for r in hold_results)
            snap = fe.frontend.admission.snapshot()
            assert snap["shed"]["low"] == 1 and snap["shed"]["high"] == 0
        finally:
            worker.stop()
            fe.stop()

    def test_priority_typo_is_rejected_client_side(self, cluster):
        """A misspelled priority never silently downgrades to best-effort."""
        fe, _ = cluster
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            with pytest.raises(ValueError):
                client.send("runtime_point", dict(network="lenet"), priority="hihg")


class TestAuth:
    def test_wrong_secret_rejected_at_the_front_door(self, cluster):
        fe, _ = cluster
        before = fe.stats()["requests"]
        with ServeClient("127.0.0.1", fe.port, secret="wrong") as client:
            response = client.send("runtime_point", dict(network="lenet"))
        assert not response.ok and response.status == 401
        assert "unauthenticated" in response.error
        stats = fe.stats()
        assert stats["auth_rejected"] >= 1
        # Rejected before admission or routing ever saw it.
        assert stats["admission"]["shed_total"] == 0
        assert stats["forwarded"] == 0 or stats["requests"] > before

    def test_unsigned_join_cannot_poison_membership(self, cluster):
        fe, _ = cluster
        with ServeClient("127.0.0.1", fe.port, secret="wrong") as client:
            response = client.send("_join", {
                "worker_id": "evil", "host": "203.0.113.1", "port": 9})
        assert not response.ok and response.status == 401
        assert fe.frontend.membership.get("evil") is None

    def test_worker_socket_also_requires_the_secret(self, cluster):
        """Defense in depth: dialing a worker directly, around the
        front-end, hits the same HMAC wall."""
        _, workers = cluster
        with ServeClient("127.0.0.1", workers[0].port, secret="wrong") as client:
            response = client.send("runtime_point", dict(network="lenet"))
        assert not response.ok and response.status == 401

    def test_worker_with_wrong_secret_cannot_join(self, tmp_path):
        fe = FrontendHandle(FrontendConfig(
            port=0, heartbeat_timeout=0.6, auth_secret=SECRET))
        fe.start()
        try:
            worker = WorkerNode(
                worker_config(tmp_path, "bad", auth_secret="wrong"),
                "127.0.0.1", fe.port, worker_id="bad")
            with pytest.raises(ConnectionError, match="refused join"):
                worker.start()
            assert len(fe.frontend.membership) == 0
        finally:
            fe.stop()

    def test_open_fleet_needs_no_secret(self, tmp_path):
        fe = FrontendHandle(FrontendConfig(port=0, heartbeat_timeout=0.6))
        fe.start()
        worker = WorkerNode(
            worker_config(tmp_path, "open", auth_secret=None),
            "127.0.0.1", fe.port, worker_id="open")
        worker.start()
        try:
            with ServeClient("127.0.0.1", fe.port) as client:
                response = client.send("fabric_sleep", {"seconds": 0.0, "tag": 5})
            assert response.ok and response.value == 5 and response.worker == "open"
        finally:
            worker.stop()
            fe.stop()


class TestGracefulLeave:
    def test_stop_sends_leave_and_moves_the_range_cleanly(self, cluster):
        fe, workers = cluster
        workers[0].stop()
        # _leave is synchronous inside stop(): no reaper wait needed.
        assert fe.frontend.membership.get("w0") is None
        assert fe.stats()["membership"]["leaves"] == 1
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            response = client.send("runtime_point", dict(
                network="lenet", layer_index=0, group_size=2,
                density=0.5, num_unique=17))
        assert response.ok and response.worker == "w1"
        assert fe.stats()["forward_errors"] == 0
