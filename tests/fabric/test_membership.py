"""Tests for fabric membership: joins, heartbeats, eviction, routing."""

import pytest

from repro.fabric import Membership


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(timeout: float = 1.5) -> tuple[Membership, FakeClock]:
    clock = FakeClock()
    return Membership(heartbeat_timeout=timeout, clock=clock), clock


class TestLifecycle:
    def test_join_heartbeat_leave(self):
        members, _ = make()
        info = members.join("w1", "10.0.0.1", 9000)
        assert info.address == ("10.0.0.1", 9000)
        assert members.heartbeat("w1")
        assert members.leave("w1")
        assert not members.leave("w1")
        assert len(members) == 0

    def test_heartbeat_unknown_worker_says_rejoin(self):
        members, _ = make()
        assert not members.heartbeat("ghost")

    def test_rejoin_refreshes_address_without_churn(self):
        members, _ = make()
        members.join("w1", "10.0.0.1", 9000)
        info = members.join("w1", "10.0.0.2", 9001)  # restarted elsewhere
        assert info.address == ("10.0.0.2", 9001)
        assert members.stats.joins == 1 and members.stats.rejoins == 1
        assert len(members) == 1

    def test_rejects_bad_ids(self):
        members, _ = make()
        with pytest.raises(ValueError):
            members.join("", "h", 1)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            Membership(heartbeat_timeout=0)


class TestEviction:
    def test_sweep_evicts_only_stale(self):
        members, clock = make(timeout=1.5)
        members.join("stale", "h", 1)
        clock.advance(1.0)
        members.join("fresh", "h", 2)
        clock.advance(1.0)  # stale: 2.0s silent; fresh: 1.0s
        assert members.sweep() == ["stale"]
        assert [w.worker_id for w in members.workers()] == ["fresh"]
        assert members.stats.eviction_reasons == {"heartbeat": 1}

    def test_heartbeat_defers_sweep(self):
        members, clock = make(timeout=1.5)
        members.join("w1", "h", 1)
        for _ in range(5):
            clock.advance(1.0)
            members.heartbeat("w1")
        assert members.sweep() == []

    def test_eager_evict(self):
        members, _ = make()
        members.join("w1", "h", 1)
        assert members.evict("w1", "connection")
        assert not members.evict("w1", "connection")
        assert members.stats.eviction_reasons == {"connection": 1}

    def test_evicted_worker_can_rejoin(self):
        members, _ = make()
        members.join("w1", "h", 1)
        members.evict("w1", "connection")
        members.join("w1", "h", 1)
        assert members.heartbeat("w1")


class TestRouting:
    def test_route_empty_fleet(self):
        members, _ = make()
        assert members.route("key") is None

    def test_route_is_stable_and_counts_forwards(self):
        members, _ = make()
        members.join("w1", "h", 1)
        members.join("w2", "h", 2)
        owner = members.route("some-key").worker_id
        for _ in range(5):
            assert members.route("some-key").worker_id == owner
        assert members.get(owner).forwards == 6

    def test_eviction_reroutes_only_the_dead_workers_keys(self):
        members, _ = make()
        for i in range(4):
            members.join(f"w{i}", "h", i)
        keys = [f"key-{i}" for i in range(300)]
        before = {k: members.route(k).worker_id for k in keys}
        members.evict("w0", "connection")
        for k in keys:
            owner = members.route(k).worker_id
            if before[k] != "w0":
                assert owner == before[k]
            else:
                assert owner != "w0"

    def test_snapshot_shape(self):
        members, _ = make()
        members.join("w1", "h", 1)
        snap = members.snapshot()
        assert snap["ring_nodes"] == ["w1"]
        assert snap["workers"][0]["worker_id"] == "w1"
        assert snap["joins"] == 1
