"""Tests for fabric HMAC signing and priority normalization."""

import pytest

from repro.fabric import auth


class TestMessageAuth:
    def test_sign_then_verify(self):
        message = {"id": 3, "endpoint": "runtime_point", "kwargs": {"density": 0.5}}
        auth.sign_message("secret", message)
        assert "auth" in message
        assert auth.verify_message("secret", message)

    def test_open_fleet_signs_nothing(self):
        message = {"id": 1, "endpoint": "ping", "kwargs": {}}
        assert auth.sign_message(None, message) is message
        assert "auth" not in message

    def test_wrong_secret_rejected(self):
        message = auth.sign_message("secret", {"endpoint": "ping", "kwargs": {}})
        assert not auth.verify_message("other", message)

    @pytest.mark.parametrize("field,value", [
        ("endpoint", "simulate"),
        ("kwargs", {"density": 0.6}),
        ("priority", "high"),
    ])
    def test_tampering_invalidates(self, field, value):
        message = auth.sign_message("secret", {
            "endpoint": "runtime_point", "kwargs": {"density": 0.5},
            "priority": "low"})
        message[field] = value
        assert not auth.verify_message("secret", message)

    def test_id_not_covered(self):
        """Request ids are connection-local; re-numbering must not break auth."""
        message = auth.sign_message("secret", {"id": 1, "endpoint": "ping", "kwargs": {}})
        message["id"] = 999
        assert auth.verify_message("secret", message)

    def test_missing_or_malformed_auth_field(self):
        assert not auth.verify_message("secret", {"endpoint": "ping", "kwargs": {}})
        assert not auth.verify_message("secret", {"endpoint": "ping", "auth": 42})
        assert not auth.verify_message("secret", {"endpoint": "ping", "auth": ["x"]})

    def test_default_and_explicit_priority_agree(self):
        """Omitting priority and sending "normal" must verify identically."""
        implicit = auth.message_signature("s", "e", {"a": 1})
        explicit = auth.message_signature("s", "e", {"a": 1}, priority="normal")
        assert implicit == explicit

    def test_kwarg_order_irrelevant(self):
        assert (auth.message_signature("s", "e", {"a": 1, "b": 2})
                == auth.message_signature("s", "e", {"b": 2, "a": 1}))


class TestHTTPAuth:
    def test_roundtrip(self):
        header = auth.http_auth_header("secret", "PUT", "/cache/ab", b"blob")
        assert header.startswith(auth.HTTP_SCHEME + " ")
        assert auth.verify_http("secret", "PUT", "/cache/ab", b"blob", header)

    @pytest.mark.parametrize("method,path,body", [
        ("GET", "/cache/ab", b"blob"),     # verb swapped
        ("PUT", "/cache/cd", b"blob"),     # re-pointed at another key
        ("PUT", "/cache/ab", b"evil"),     # body swapped
    ])
    def test_binding(self, method, path, body):
        header = auth.http_auth_header("secret", "PUT", "/cache/ab", b"blob")
        assert not auth.verify_http("secret", method, path, body, header)

    def test_missing_or_bad_scheme(self):
        assert not auth.verify_http("secret", "GET", "/", b"", None)
        assert not auth.verify_http("secret", "GET", "/", b"", "")
        assert not auth.verify_http("secret", "GET", "/", b"", "Bearer abc")
        assert not auth.verify_http("secret", "GET", "/", b"", auth.HTTP_SCHEME)


class TestPriorities:
    def test_normalize(self):
        assert auth.normalize_priority(None) == "normal"
        for p in auth.PRIORITIES:
            assert auth.normalize_priority(p) == p

    def test_typo_is_an_error_not_best_effort(self):
        with pytest.raises(ValueError):
            auth.normalize_priority("hihg")

    def test_default_secret_ignores_empty(self, monkeypatch):
        monkeypatch.setenv(auth.SECRET_ENV, "")
        assert auth.default_secret() is None
        monkeypatch.setenv(auth.SECRET_ENV, "hunter2")
        assert auth.default_secret() == "hunter2"
        monkeypatch.delenv(auth.SECRET_ENV)
        assert auth.default_secret() is None
