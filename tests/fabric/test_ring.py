"""Property and unit tests for the fabric hash ring.

The two load-bearing claims of ``repro.fabric.ring`` — distribution
close enough to uniform, and bounded key movement on membership change
— are pinned here with hypothesis driving the member sets.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import HashRing

#: Worker-id-shaped node names (distinct within one example).
_node_sets = st.sets(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12),
    min_size=1, max_size=8)


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestRouting:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.route("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert {ring.route(k) for k in _keys(50)} == {"only"}

    def test_set_determined(self):
        """Routing is a function of the member *set*, not its history."""
        a = HashRing(["w1", "w2", "w3"])
        b = HashRing(["w3", "w1"])
        b.add("w2")
        b.add("extra")
        b.remove("extra")
        keys = _keys(200)
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_membership_api(self):
        ring = HashRing(replicas=8)
        assert ring.add("a") and not ring.add("a")
        assert "a" in ring and "b" not in ring
        assert ring.remove("a") and not ring.remove("a")
        assert ring.nodes == ()

    def test_rejects_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestPreference:
    def test_preference_starts_at_owner_and_covers_all(self):
        ring = HashRing(["w1", "w2", "w3", "w4"])
        for key in _keys(20):
            order = ring.preference(key)
            assert order[0] == ring.route(key)
            assert sorted(order) == sorted(ring.nodes)

    def test_preference_limit(self):
        ring = HashRing(["w1", "w2", "w3"])
        assert len(ring.preference("k", limit=2)) == 2

    def test_preference_next_is_route_after_owner_leaves(self):
        """The failover order IS the post-eviction routing."""
        ring = HashRing(["w1", "w2", "w3"])
        for key in _keys(50):
            first, second = ring.preference(key, limit=2)
            smaller = HashRing(set(ring.nodes) - {first})
            assert smaller.route(key) == second


@settings(max_examples=30, deadline=None)
@given(nodes=_node_sets)
def test_distribution_within_2x_of_uniform(nodes):
    """Every node's key share stays within 2x of the uniform share."""
    ring = HashRing(nodes, replicas=64)
    keys = _keys(4000)
    counts = {n: 0 for n in nodes}
    for k in keys:
        counts[ring.route(k)] += 1
    fair = len(keys) / len(nodes)
    assert all(count <= 2 * fair for count in counts.values())


@settings(max_examples=30, deadline=None)
@given(nodes=_node_sets, joiner=st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12))
def test_join_moves_at_most_its_fair_share(nodes, joiner):
    """A join remaps ~1/(n+1) of keys — all of them TO the joiner."""
    before = HashRing(nodes, replicas=64)
    after = HashRing(nodes, replicas=64)
    grew = after.add(joiner)
    keys = _keys(2000)
    moved = [k for k in keys if before.route(k) != after.route(k)]
    if not grew:  # joiner was already a member: nothing may move
        assert moved == []
        return
    # Every moved key landed on the joiner (consistent hashing's core
    # promise), and the moved fraction is about one fair share — 2x
    # slack for virtual-point variance at small n.
    assert all(after.route(k) == joiner for k in moved)
    assert len(moved) / len(keys) <= 2.0 / (len(nodes) + 1)


@settings(max_examples=30, deadline=None)
@given(nodes=_node_sets, joiner=st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12),
    r=st.integers(min_value=2, max_value=3))
def test_replica_sets_stable_on_join(nodes, joiner, r):
    """R-way replica sets move minimally on join: a key's new replica
    set only ever differs from the old one by admitting the joiner —
    never by reshuffling survivors among themselves.  This is what
    makes pre-warm cheap: a membership change invalidates at most one
    replica slot per key."""
    before = HashRing(nodes, replicas=64)
    after = HashRing(nodes, replicas=64)
    grew = after.add(joiner)
    for k in _keys(300):
        old = set(before.preference(k, limit=r))
        new = set(after.preference(k, limit=r))
        if not grew:
            assert new == old
            continue
        # Every newcomer to the set is the joiner itself; anyone pushed
        # out was displaced by it, so at most one survivor is demoted.
        assert new - old <= {joiner}
        assert len(old - new) <= 1


@settings(max_examples=30, deadline=None)
@given(nodes=_node_sets, r=st.integers(min_value=2, max_value=3))
def test_replica_sets_stable_on_leave(nodes, r):
    """R-way replica sets on leave: surviving replicas keep their
    membership; the leaver's slot is backfilled by at most one new
    node per key (the next in preference order)."""
    leaver = sorted(nodes)[0]
    before = HashRing(nodes, replicas=64)
    after = HashRing(nodes, replicas=64)
    after.remove(leaver)
    for k in _keys(300):
        old = set(before.preference(k, limit=r))
        new = set(after.preference(k, limit=r))
        # No survivor that stood behind the key walks away from it.
        assert old - {leaver} <= new
        assert len(new - old) <= 1


@settings(max_examples=30, deadline=None)
@given(nodes=_node_sets)
def test_leave_moves_only_the_leavers_keys(nodes):
    """A leave remaps exactly the leaver's keys, nothing else."""
    leaver = sorted(nodes)[0]
    before = HashRing(nodes, replicas=64)
    after = HashRing(nodes, replicas=64)
    after.remove(leaver)
    for k in _keys(1000):
        if before.route(k) != leaver:
            assert after.route(k) == before.route(k)
