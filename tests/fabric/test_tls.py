"""TLS tests: handshake-level rejection on every fabric socket.

The committed fixtures under ``tests/certs/`` (see ``make_certs.sh``
there) carry two disjoint CAs: ``ca.pem`` signs ``node.pem`` (the
fleet identity) and ``rogue-ca.pem`` signs ``rogue.pem`` (an attacker
with a *valid-looking* certificate from the wrong authority).  The
claims pinned here:

* a TLS fleet (front-end + worker + client on one CA) works end to
  end, and HMAC still applies underneath;
* a client presenting the rogue identity dies in the TLS handshake —
  before HMAC runs, so ``auth_rejected`` never moves;
* a plaintext client cannot talk to a TLS socket;
* the cache peer enforces the same boundary over HTTPS.
"""

import ssl
from pathlib import Path

import pytest

from repro.fabric import FrontendConfig, FrontendHandle, WorkerNode
from repro.fabric.tls import TLSConfig, TLSConfigError, from_env
from repro.runtime.peer import CachePeer
from repro.runtime.tiers import HTTPPeerTier, TierUnavailable
from repro.serve import ServeClient, ServeConfig

CERTS = Path(__file__).resolve().parents[1] / "certs"
SECRET = "tls-test-secret"

FLEET_TLS = TLSConfig(certfile=str(CERTS / "node.pem"),
                      keyfile=str(CERTS / "node.key"),
                      cafile=str(CERTS / "ca.pem"))
ROGUE_TLS = TLSConfig(certfile=str(CERTS / "rogue.pem"),
                      keyfile=str(CERTS / "rogue.key"),
                      cafile=str(CERTS / "rogue-ca.pem"))

#: What a refused handshake surfaces as, depending on which side drops
#: first (SSLError from the alert, ConnectionError/OSError on a reset).
HANDSHAKE_ERRORS = (ssl.SSLError, ConnectionError, OSError)


class TestTLSConfig:
    def test_server_context_requires_cert_and_key(self):
        with pytest.raises(TLSConfigError, match="tls-cert"):
            TLSConfig(cafile=str(CERTS / "ca.pem")).server_context()

    def test_client_context_requires_ca(self):
        with pytest.raises(TLSConfigError, match="tls-ca"):
            TLSConfig(certfile=str(CERTS / "node.pem"),
                      keyfile=str(CERTS / "node.key")).client_context()

    def test_enabled_only_with_material(self):
        assert not TLSConfig().enabled
        assert TLSConfig(cafile="x").enabled

    def test_from_env_reads_the_fabric_variables(self):
        env = {"REPRO_FABRIC_TLS_CERT": "c.pem", "REPRO_FABRIC_TLS_KEY": "k.pem",
               "REPRO_FABRIC_TLS_CA": "ca.pem",
               "REPRO_FABRIC_TLS_CHECK_HOSTNAME": "1"}
        tls = from_env(env)
        assert tls == TLSConfig("c.pem", "k.pem", "ca.pem", check_hostname=True)
        assert from_env({}) is None

    def test_mutual_contexts_are_well_formed(self):
        server = FLEET_TLS.server_context()
        assert server.verify_mode == ssl.CERT_REQUIRED  # mutual TLS
        client = FLEET_TLS.client_context()
        assert client.verify_mode == ssl.CERT_REQUIRED
        assert not client.check_hostname


@pytest.fixture
def tls_cluster(tmp_path):
    """1 TLS front-end + 1 TLS worker sharing cert, CA, and secret."""
    fe = FrontendHandle(FrontendConfig(
        port=0, heartbeat_timeout=5.0, auth_secret=SECRET,
        tls=FLEET_TLS)).start()
    worker = WorkerNode(
        ServeConfig(port=0, workers=2, mode="thread", max_delay_ms=1.0,
                    cache_dir=str(tmp_path / "cache"), auth_secret=SECRET,
                    tls=FLEET_TLS),
        "127.0.0.1", fe.port, worker_id="tls-w0")
    worker.start()
    try:
        yield fe, worker
    finally:
        worker.stop()
        fe.stop()


class TestFleetTLS:
    def test_tls_fleet_serves_end_to_end(self, tls_cluster):
        """Join, heartbeat, forward, and reply all ride TLS sockets."""
        fe, worker = tls_cluster
        with ServeClient("127.0.0.1", fe.port, secret=SECRET,
                         tls=FLEET_TLS) as client:
            response = client.send("runtime_point", dict(
                network="lenet", layer_index=0, group_size=2,
                density=0.5, num_unique=17))
        assert response.ok and response.worker == "tls-w0"

    def test_wrong_ca_client_dies_in_the_handshake(self, tls_cluster):
        """The rogue identity is refused before HMAC ever runs: the
        connection never yields a request, so auth_rejected is
        untouched."""
        fe, _ = tls_cluster
        before = fe.stats()["auth_rejected"]
        with pytest.raises(HANDSHAKE_ERRORS):
            ServeClient("127.0.0.1", fe.port, timeout=5.0, secret=SECRET,
                        tls=ROGUE_TLS)
        assert fe.stats()["auth_rejected"] == before == 0

    def test_plaintext_client_cannot_reach_a_tls_frontend(self, tls_cluster):
        fe, _ = tls_cluster
        with pytest.raises(HANDSHAKE_ERRORS):
            with ServeClient("127.0.0.1", fe.port, timeout=5.0,
                             secret=SECRET) as client:
                client.send("ping", {})

    def test_hmac_still_gates_under_tls(self, tls_cluster):
        """TLS is transport, not authorization: a fleet-certified client
        with the wrong shared secret still bounces off HMAC."""
        fe, _ = tls_cluster
        with ServeClient("127.0.0.1", fe.port, secret="wrong",
                         tls=FLEET_TLS) as client:
            response = client.send("runtime_point", dict(network="lenet"))
        assert not response.ok and response.status == 401
        assert fe.stats()["auth_rejected"] == 1

    def test_worker_socket_speaks_tls_too(self, tls_cluster):
        """Dialing the worker directly (around the front-end) meets the
        same handshake wall."""
        _, worker = tls_cluster
        with pytest.raises(HANDSHAKE_ERRORS):
            ServeClient("127.0.0.1", worker.port, timeout=5.0, secret=SECRET,
                        tls=ROGUE_TLS)
        with ServeClient("127.0.0.1", worker.port, secret=SECRET,
                         tls=FLEET_TLS) as client:
            assert client.send("ping", {"payload": 1}).value == {"pong": 1}


class TestCachePeerTLS:
    def test_https_roundtrip_and_rogue_rejection(self, tmp_path):
        key = "ab" * 32  # peer keys are content-addressed sha256 hex
        with CachePeer(root=tmp_path / "peer", port=0, secret=SECRET,
                       tls=FLEET_TLS) as peer:
            assert peer.url.startswith("https://")
            tier = HTTPPeerTier(peer.url, secret=SECRET, tls=FLEET_TLS)
            assert tier.put_blob(key, b"blob-bytes")
            assert tier.get_blob(key) == b"blob-bytes"
            # Rogue CA: every operation fails closed (the tier treats a
            # failed handshake as tier-unavailable — loudly, never as a
            # clean miss that could poison the cache).
            rogue = HTTPPeerTier(peer.url, secret=SECRET, tls=ROGUE_TLS)
            assert rogue.put_blob("cd" * 32, b"x") is False
            with pytest.raises(TierUnavailable):
                rogue.get_blob(key)
            assert peer.stats_payload()["auth_rejected"] == 0
