"""Chaos drill tests: the scripted kill/restart sequence as a test.

The cheap pieces (drill mix, report bookkeeping) run in tier-1; the
full subprocess drills — real ``python -m repro.cli worker`` processes,
SIGKILL mid-load, TLS with a rogue CA — are ``slow``-marked, mirroring
what CI's ``chaos-smoke`` job runs via ``python -m repro.fabric.chaos``.
"""

from pathlib import Path

import pytest

from repro.fabric.chaos import DrillReport, _drill_mix, run_drill
from repro.fabric.tls import TLSConfig

CERTS = Path(__file__).resolve().parents[1] / "certs"


class TestDrillPieces:
    def test_drill_mix_alternates_priorities_over_distinct_seeds(self):
        mix = _drill_mix(8)
        assert len(mix) == 8
        assert all(endpoint == "network_forward" for endpoint, _, _ in mix)
        assert [priority for _, _, priority in mix] == ["high", "normal"] * 4
        assert len({kwargs["seed"] for _, kwargs, _ in mix}) == 8

    def test_report_ok_iff_no_violations(self):
        report = DrillReport(workers=3, replication=2, tls=False)
        assert report.ok
        report.violations.append("lost an ack")
        assert not report.ok
        rendered = report.render()
        assert "lost an ack" in rendered and "VIOLATIONS" in rendered


@pytest.mark.slow
class TestDrill:
    def test_sigkill_mid_load_is_invisible(self, tmp_path):
        """The acceptance drill: R=2, 3 workers, one SIGKILLed under
        sustained load — zero lost acked reads, zero recompiles on the
        survivors, clean rebalance after restart."""
        report = run_drill(workers=3, replication=2, requests=24,
                           duration=3.0, base_dir=tmp_path)
        assert report.ok, report.render()
        assert report.phases["kill"]["lost"] == 0
        assert report.phases["restart"]["lost"] == 0
        # Survivor compile counters did not move across the SIGKILL.
        baseline = report.phases["warmth"]["compiles"]
        for worker_id, misses in report.phases["survivors"]["compiles"].items():
            assert misses == baseline[worker_id]

    def test_drill_over_tls_rejects_the_rogue_ca(self, tmp_path):
        """Same drill on mutual-TLS sockets; the rogue identity must be
        dropped in the handshake with the HMAC counter untouched."""
        fleet = TLSConfig(certfile=str(CERTS / "node.pem"),
                          keyfile=str(CERTS / "node.key"),
                          cafile=str(CERTS / "ca.pem"))
        rogue = TLSConfig(certfile=str(CERTS / "rogue.pem"),
                          keyfile=str(CERTS / "rogue.key"),
                          cafile=str(CERTS / "rogue-ca.pem"))
        report = run_drill(workers=3, replication=2, requests=16,
                           duration=2.0, tls=fleet, rogue=rogue,
                           base_dir=tmp_path)
        assert report.ok, report.render()
        assert report.phases["wrong_ca"]["outcome"] == "handshake-refused"
        assert report.phases["wrong_ca"]["auth_rejected_delta"] == 0
