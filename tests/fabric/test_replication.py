"""Replicated-routing tests: spill, idempotence-gated replay, catalog.

In-process fleets (FrontendHandle + thread-mode WorkerNodes) with
``replication=2`` pin the three behaviors the R-way tentpole added to
the forward path:

* load **spills** to the key's next replica when the owner is past the
  per-worker in-flight threshold;
* a transport failure mid-request **replays** on the next replica only
  for endpoints declared idempotent — a non-idempotent request is
  answered with an error instead (``not_replayed``), so it executes at
  most once;
* the front-end's routed-key **catalog** drives ``_assignments``,
  giving every replica its pre-warm work list.
"""

import json
import threading
import time

import pytest

from repro.fabric import FrontendConfig, FrontendHandle, WorkerNode
from repro.serve import ServeClient, ServeConfig, register

SECRET = "replication-test-secret"

#: Calls seen by repl_slow_once, shared across both thread-mode workers
#: (same process): the first caller sleeps past the forward timeout,
#: the replay answers instantly.
_SLOW_ONCE_CALLS: list[float] = []


@register("repl_hold")
def repl_hold(seconds: float = 0.5, tag: int = 0) -> int:
    """Test endpoint: occupy the owner's forward slot for a while."""
    time.sleep(seconds)
    return tag


@register("repl_write", idempotent=False)
def repl_write(seconds: float = 0.0, tag: int = 0) -> int:
    """Test endpoint registered non-idempotent (a 'write')."""
    time.sleep(seconds)
    return tag


@register("repl_slow_once")
def repl_slow_once(seconds: float = 1.0, tag: int = 0) -> int:
    """Test endpoint: only the FIRST call (per process) is slow."""
    _SLOW_ONCE_CALLS.append(time.monotonic())
    if len(_SLOW_ONCE_CALLS) == 1:
        time.sleep(seconds)
    return tag


def routing_key(endpoint: str, kwargs: dict) -> str:
    """The exact key string Frontend._forward hashes for routing."""
    return endpoint + ":" + json.dumps(kwargs, sort_keys=True, separators=(",", ":"))


def make_cluster(tmp_path, **frontend_overrides):
    """1 front-end + 2 workers at replication=2; caller stops both."""
    defaults = dict(port=0, heartbeat_timeout=5.0, auth_secret=SECRET,
                    replication=2)
    defaults.update(frontend_overrides)
    fe = FrontendHandle(FrontendConfig(**defaults)).start()
    workers = []
    for i in range(2):
        config = ServeConfig(
            port=0, workers=2, mode="thread", max_delay_ms=1.0,
            cache_dir=str(tmp_path / f"w{i}" / "cache"), auth_secret=SECRET)
        workers.append(WorkerNode(config, "127.0.0.1", fe.port,
                                  worker_id=f"w{i}").start())
    return fe, workers


def stop_cluster(fe, workers) -> None:
    for worker in workers:
        try:
            worker.stop()
        except Exception:
            pass
    fe.stop()


@pytest.fixture
def cluster(tmp_path):
    fe, workers = make_cluster(tmp_path)
    try:
        yield fe, workers
    finally:
        stop_cluster(fe, workers)


def owner_of(fe, endpoint: str, kwargs: dict) -> str:
    prefs = fe.frontend.membership.preference(routing_key(endpoint, kwargs), 2)
    return prefs[0].worker_id


def keys_owned_by(fe, worker_id: str, endpoint: str, count: int = 2) -> list[dict]:
    """kwargs variants (distinct tags) whose routing owner is worker_id."""
    out = []
    for tag in range(200):
        kwargs = {"seconds": 0.01, "tag": tag}
        if owner_of(fe, endpoint, kwargs) == worker_id:
            out.append(kwargs)
            if len(out) == count:
                return out
    pytest.fail(f"no {count} keys owned by {worker_id} in 200 tags")


class TestSpill:
    def test_saturated_owner_spills_to_replica(self, tmp_path):
        """With the owner at its in-flight threshold, the same key range
        is served by its replica — no queueing behind the slow node."""
        fe, workers = make_cluster(tmp_path, worker_inflight_limit=1)
        try:
            owner = workers[0].worker_id
            hold_kwargs, probe_kwargs = keys_owned_by(fe, owner, "repl_hold")
            hold_kwargs = dict(hold_kwargs, seconds=1.5)

            def hold() -> None:
                with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                    client.send("repl_hold", hold_kwargs)

            holder = threading.Thread(target=hold)
            holder.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                info = fe.frontend.membership.get(owner)
                if info is not None and info.inflight >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("holder never reached the owner")

            with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                probe = client.send("repl_hold", probe_kwargs)
            holder.join()
            assert probe.ok and probe.value == probe_kwargs["tag"]
            assert probe.worker == workers[1].worker_id  # the replica
            stats = fe.stats()
            assert stats["spills"] >= 1
            by_id = {w["worker_id"]: w for w in stats["membership"]["workers"]}
            # The spill is accounted on the replica that ABSORBED it.
            assert by_id[workers[1].worker_id]["spills"] >= 1
        finally:
            stop_cluster(fe, workers)


class TestIdempotenceGate:
    def test_idempotent_timeout_replays_on_the_next_replica(self, tmp_path):
        """A read that times out mid-request is retried down the
        preference list and still answers ok."""
        _SLOW_ONCE_CALLS.clear()
        fe, workers = make_cluster(tmp_path, forward_timeout=0.3)
        try:
            with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                response = client.send(
                    "repl_slow_once", {"seconds": 2.0, "tag": 7})
            assert response.ok and response.value == 7
            stats = fe.stats()
            assert stats["retries"] >= 1
            assert stats["forward_errors"] >= 1
            assert stats["not_replayed"] == 0
            assert len(_SLOW_ONCE_CALLS) == 2  # original + one replay
        finally:
            stop_cluster(fe, workers)

    def test_non_idempotent_timeout_is_never_replayed(self, tmp_path):
        """The same mid-request death on a declared write answers 503
        instead of replaying — at-most-once execution."""
        fe, workers = make_cluster(tmp_path, forward_timeout=0.3)
        try:
            with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
                response = client.send("repl_write", {"seconds": 2.0, "tag": 8})
            assert not response.ok and response.status == 503
            assert "not idempotent" in response.error
            assert "not" in response.error and "replayed" in response.error
            stats = fe.stats()
            assert stats["not_replayed"] == 1
            # The timed-out worker was still evicted — failing fast is
            # allowed; silently re-executing the write is not.
            assert stats["forward_errors"] >= 1
        finally:
            stop_cluster(fe, workers)


class TestAssignments:
    def test_catalog_feeds_per_worker_prewarm_lists(self, cluster):
        """Every routed key shows up in BOTH workers' assignment lists
        at R=2 with two workers — rank 0 on the owner, 1 on the
        replica — and the summary view balances."""
        fe, workers = cluster
        mixes = [{"network": "lenet", "layer_index": i % 3, "group_size": 2,
                  "density": 0.5, "num_unique": 17 + i} for i in range(6)]
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            for kwargs in mixes:
                assert client.send("runtime_point", kwargs).ok
            summary = client.send("_assignments", {}).value
            per_worker = {
                w.worker_id: client.send(
                    "_assignments", {"worker_id": w.worker_id}).value
                for w in workers}
        assert summary["replication"] == 2
        assert summary["catalog"] == len(mixes)
        assert set(summary["workers"]) == {"w0", "w1"}
        for worker_id, view in per_worker.items():
            assert view["worker_id"] == worker_id
            assert len(view["entries"]) == len(mixes)  # replica of every key
            assert {e["rank"] for e in view["entries"]} <= {0, 1}
            counted = summary["workers"][worker_id]
            primaries = sum(1 for e in view["entries"] if e["rank"] == 0)
            assert counted["primary"] == primaries
            assert counted["replica"] == len(mixes) - primaries
        # Each key has exactly one owner across the fleet.
        total_primary = sum(v["primary"] for v in summary["workers"].values())
        assert total_primary == len(mixes)

    def test_join_reply_advertises_replication(self, cluster):
        fe, _ = cluster
        with ServeClient("127.0.0.1", fe.port, secret=SECRET) as client:
            stats = client.send("_stats", {}).value
        assert stats["routing"]["replication"] == 2
        assert stats["routing"]["worker_inflight_limit"] == 32
