"""Tests for admission control: buckets, the depth ladder, stats."""

import pytest

from repro.fabric import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.1)  # one token back at 10/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        bucket.try_take(), bucket.try_take()
        clock.advance(60.0)  # a minute idle must not bank 6000 tokens
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]

    def test_none_rate_disables(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_take() for _ in range(1000))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


class TestDepthLadder:
    def test_low_sheds_first_then_normal_then_high(self):
        """The whole point: background traffic degrades before interactive."""
        controller = AdmissionController(max_inflight=8)
        # Fill to 4 in-flight (50%): low sheds, normal and high admit.
        for _ in range(4):
            assert controller.admit("high").admitted
        low = controller.admit("low")
        assert not low.admitted and low.reason == "queue-depth"
        assert controller.admit("normal").admitted  # now 5
        assert controller.admit("normal").admitted  # now 6 (75%): normal caps
        assert not controller.admit("normal").admitted
        assert controller.admit("high").admitted    # 7
        assert controller.admit("high").admitted    # 8: hard ceiling
        assert not controller.admit("high").admitted

    def test_release_reopens(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.admit("low").admitted
        assert not controller.admit("low").admitted  # 1 >= 50% of 2
        controller.release()
        assert controller.admit("low").admitted

    def test_release_never_goes_negative(self):
        controller = AdmissionController(max_inflight=4)
        controller.release()
        assert controller.inflight == 0

    def test_default_priority_is_normal(self):
        controller = AdmissionController(max_inflight=4)
        decision = controller.admit(None)
        assert decision.admitted and decision.priority == "normal"

    def test_bad_priority_raises(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=4).admit("urgent")

    def test_rejects_bad_max_inflight(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class TestRates:
    def test_rate_sheds_only_the_metered_priority(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_inflight=1000, rates={"low": 2.0}, clock=clock)
        outcomes = [controller.admit("low") for _ in range(4)]
        assert [d.admitted for d in outcomes] == [True, True, False, False]
        assert outcomes[2].reason == "rate"
        assert controller.admit("normal").admitted  # unmetered class unaffected

    def test_rate_shed_does_not_consume_inflight(self):
        clock = FakeClock()
        controller = AdmissionController(max_inflight=10, rates={"low": 1.0}, clock=clock)
        controller.admit("low")
        controller.admit("low")  # rate-shed
        assert controller.inflight == 1


class TestStats:
    def test_snapshot_accounts_every_decision(self):
        controller = AdmissionController(max_inflight=2)
        controller.admit("high")
        controller.admit("high")
        controller.admit("high")  # shed at ceiling
        controller.admit("low")   # shed by ladder
        snap = controller.snapshot()
        assert snap["admitted"]["high"] == 2
        assert snap["shed"]["high"] == 1 and snap["shed"]["low"] == 1
        assert snap["shed_total"] == 2
        assert snap["shed_queue_depth"] == 2
        assert snap["inflight"] == 2
        assert snap["shed_fraction"] == pytest.approx(0.5)
