"""Tests for the energy and area models."""

import pytest

from repro.arch.config import dcnn_config, ucnn_config
from repro.arch.dataflow import L2Traffic
from repro.arch.dram import DramTraffic
from repro.arch.noc import estimate_geometry, noc_static_energy_pj, noc_transfer_energy_pj
from repro.energy.area import dcnn_pe_area, ucnn_pe_area
from repro.energy.model import EnergyModel, EnergyBreakdown
from repro.energy.ops import add_energy_pj, mac_energy_pj, mult_energy_pj
from repro.energy.sram import sram_access_energy_pj, sram_area_mm2, sram_pj_per_bit
from repro.sim.events import EventCounts


class TestArithmeticCalibration:
    def test_paper_mult_anchors(self):
        """Section VII: 8-bit multiply 0.1 pJ, 16-bit 0.4 pJ at 32 nm."""
        assert mult_energy_pj(8, 8) == pytest.approx(0.1)
        assert mult_energy_pj(16, 16) == pytest.approx(0.4)

    def test_mult_scales_with_bit_product(self):
        assert mult_energy_pj(16, 20) == pytest.approx(0.4 * 20 / 16)

    def test_add_linear(self):
        assert add_energy_pj(32) == pytest.approx(2 * add_energy_pj(16))

    def test_mac(self):
        assert mac_energy_pj(16, 16) == pytest.approx(0.4 + add_energy_pj(24))

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            mult_energy_pj(0)
        with pytest.raises(ValueError):
            add_energy_pj(0)


class TestSramCalibration:
    def test_paper_small_lookup(self):
        """512-entry x 8-bit lookup = 0.17 pJ (Section VII)."""
        assert sram_access_energy_pj(512, 8) == pytest.approx(0.17, rel=0.01)

    def test_paper_large_lookup(self):
        """32K-entry x 16-bit lookup = 2.5 pJ (Section VII)."""
        assert sram_access_energy_pj(32 * 1024 * 2, 16) == pytest.approx(2.5, rel=0.01)

    def test_energy_grows_with_capacity(self):
        assert sram_pj_per_bit(1024) < sram_pj_per_bit(64 * 1024)

    def test_area_calibration_points(self):
        """Table III's DCNN buffers anchor the area fit."""
        assert sram_area_mm2(144) == pytest.approx(0.00135, rel=0.01)
        assert sram_area_mm2(1152) == pytest.approx(0.00384, rel=0.01)

    def test_banking_overhead(self):
        assert sram_area_mm2(1152, banks=4) > sram_area_mm2(1152, banks=1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            sram_pj_per_bit(0)
        with pytest.raises(ValueError):
            sram_area_mm2(100, banks=0)


class TestNoc:
    def test_geometry(self):
        geo = estimate_geometry(dcnn_config(16), 0.015, 0.5)
        assert geo.bus_length_mm > 0
        assert geo.total_wires == geo.weight_bus_bits + geo.input_bus_bits + geo.output_bus_bits

    def test_transfer_energy_linear_in_bits(self):
        geo = estimate_geometry(dcnn_config(16), 0.015, 0.5)
        assert noc_transfer_energy_pj(2000, geo) == pytest.approx(2 * noc_transfer_energy_pj(1000, geo))

    def test_static_energy_per_cycle(self):
        geo = estimate_geometry(dcnn_config(16), 0.015, 0.5)
        assert noc_static_energy_pj(100, geo, 32) == pytest.approx(100 * noc_static_energy_pj(1, geo, 32))


class TestEnergyModel:
    def events(self, **kw):
        base = dict(cycles=1000, multiplies=5000, adds_acc=0, adds_psum=5000,
                    input_l1_reads=5000, weight_l1_reads=5000,
                    table_bits_read=0, psum_accesses=100)
        base.update(kw)
        return EventCounts(**base)

    def l2(self):
        return L2Traffic(weight_read_bits=10_000, input_read_bits=10_000,
                         output_write_bits=1_000, weight_fill_bits=10_000,
                         input_fill_bits=0)

    def test_breakdown_components_positive(self):
        model = EnergyModel(dcnn_config(16))
        breakdown = model.breakdown(self.events(), self.l2(), DramTraffic(10_000, 0, 0))
        assert breakdown.dram_pj > 0 and breakdown.l2_pj > 0 and breakdown.pe_pj > 0
        assert breakdown.total_pj == pytest.approx(
            breakdown.dram_pj + breakdown.l2_pj + breakdown.pe_pj)

    def test_dram_dominates_per_bit(self):
        """DRAM at 20 pJ/bit must dwarf L2 per-bit cost."""
        model = EnergyModel(dcnn_config(16))
        assert 20.0 > model._l2_pj_per_bit * 10

    def test_ucnn_multiplier_wider(self):
        """UCNN multiplies cost more each (4 extra operand bits)."""
        dcnn = EnergyModel(dcnn_config(16))
        ucnn = EnergyModel(ucnn_config(17, 16))
        only_mult = self.events(adds_psum=0, input_l1_reads=0, weight_l1_reads=0, psum_accesses=0)
        assert ucnn.pe_energy_pj(only_mult) > dcnn.pe_energy_pj(only_mult)

    def test_banked_input_reads_cheaper(self):
        """Banking charges per-bank capacity: cheaper per read."""
        dcnn = EnergyModel(dcnn_config(16))
        ucnn = EnergyModel(ucnn_config(17, 16))
        only_reads = EventCounts(input_l1_reads=1000)
        # UCNN's banks are 1152/4 = 288 B vs DCNN's single 144 B buffer —
        # close capacities, so the per-read costs must be similar.
        ratio = ucnn.pe_energy_pj(only_reads) / dcnn.pe_energy_pj(only_reads)
        assert 0.5 < ratio < 2.0

    def test_breakdown_addition_and_normalization(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = a + a
        assert b.total_pj == 12.0
        norm = a.normalized_to(a)
        assert norm["total"] == pytest.approx(1.0)


class TestAreaModel:
    def test_dcnn_total_near_paper(self):
        import dataclasses
        cfg = dataclasses.replace(dcnn_config(16), vk=2)
        area = dcnn_pe_area(cfg)
        assert area.total == pytest.approx(0.01325, rel=0.10)

    def test_ucnn_overhead_in_paper_band(self):
        import dataclasses
        dcnn = dataclasses.replace(dcnn_config(16), vk=2)
        ucnn = ucnn_config(17, 16)
        overhead = ucnn_pe_area(ucnn).overhead_vs(dcnn_pe_area(dcnn))
        assert 0.10 < overhead < 0.25  # paper: 17%

    def test_weight_buffer_provisioning_grows_area(self):
        import dataclasses
        u17 = ucnn_pe_area(ucnn_config(17, 16))
        u256 = ucnn_pe_area(dataclasses.replace(ucnn_config(17, 16), num_unique=256))
        assert u256.total > u17.total

    def test_ucnn_requires_ucnn_config(self):
        with pytest.raises(ValueError):
            ucnn_pe_area(dcnn_config(16))

    def test_component_sums(self):
        area = dcnn_pe_area(dcnn_config(16))
        total = (area.input_buffer + area.indirection_table + area.weight_buffer
                 + area.psum_buffer + area.arithmetic + area.control)
        assert area.total == pytest.approx(total)
