"""Tests for hierarchical activation-group reuse tables (G >= 1)."""

import numpy as np
import pytest

from repro.core.activation_groups import canonical_weight_order
from repro.core.hierarchical import (
    INLINE_SKIP_CAPACITY,
    build_filter_group_tables,
)
from repro.core.indirection import factorize_filter


def dense(filters, window):
    return np.asarray(filters, dtype=np.int64) @ np.asarray(window, dtype=np.int64)


class TestConstruction:
    def test_stored_entries_are_union_of_supports(self):
        filters = np.array([[1, 0, 0, 2], [0, 0, 3, 1]])
        t = build_filter_group_tables(filters)
        assert sorted(t.iit) == [0, 2, 3]

    def test_all_zero_positions_dropped(self):
        filters = np.array([[1, 0, 2], [1, 0, 2]])
        t = build_filter_group_tables(filters)
        assert 1 not in t.iit

    def test_hierarchical_order_primary_key_filter1(self):
        """Entries must be grouped contiguously by filter 1's rank."""
        rng = np.random.default_rng(3)
        filters = rng.integers(-2, 3, size=(2, 40))
        t = build_filter_group_tables(filters)
        r1 = t.ranks[0]
        seen = set()
        prev = None
        for r in r1:
            if r != prev:
                assert r not in seen
                seen.add(r)
                prev = r

    def test_subgroups_contiguous_within_parent(self):
        rng = np.random.default_rng(4)
        filters = rng.integers(-2, 3, size=(3, 60))
        t = build_filter_group_tables(filters)
        # Within each level-1 run, level-2 ranks must be grouped too.
        keys = list(zip(t.ranks[0], t.ranks[1]))
        seen = set()
        prev = None
        for k in keys:
            if k != prev:
                assert k not in seen
                seen.add(k)
                prev = k

    def test_transitions_nested(self):
        """A level-g boundary is also a boundary for all deeper levels."""
        rng = np.random.default_rng(5)
        filters = rng.integers(-2, 3, size=(3, 50))
        t = build_filter_group_tables(filters)
        for g in range(t.num_filters - 1):
            assert np.all(~t.transitions[g] | t.transitions[g + 1])

    def test_last_entry_is_boundary_for_all_levels(self):
        filters = np.array([[1, 2], [2, 1]])
        t = build_filter_group_tables(filters)
        assert np.all(t.transitions[:, -1])

    def test_g1_matches_factorize_filter(self, rng):
        """G=1 tables must agree with the vanilla single-filter path."""
        for __ in range(10):
            n = int(rng.integers(1, 60))
            filt = rng.integers(-3, 4, size=n)
            t = build_filter_group_tables(filt.reshape(1, -1))
            ff = factorize_filter(filt)
            assert np.array_equal(t.iit, ff.iit)
            assert np.array_equal(t.transitions[0], ff.wit)

    def test_layer_canonical_accepted(self):
        filters = np.array([[1, 0], [0, 1]])
        canonical = canonical_weight_order(np.array([5, 1, -2, 0]))
        t = build_filter_group_tables(filters, canonical=canonical)
        assert t.num_unique == 4

    def test_duplicate_canonical_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            build_filter_group_tables(np.array([[1]]), canonical=np.array([1, 1, 0]))

    def test_zero_not_last_rejected(self):
        with pytest.raises(ValueError, match="zero last"):
            build_filter_group_tables(np.array([[1]]), canonical=np.array([0, 1]))

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            build_filter_group_tables(np.array([1, 2, 3]))


class TestExecution:
    @pytest.mark.parametrize("g", [1, 2, 3, 4])
    def test_bit_exact_vs_dense(self, g, rng):
        for __ in range(15):
            n = int(rng.integers(1, 50))
            filters = rng.integers(-3, 4, size=(g, n))
            window = rng.integers(-20, 21, size=n)
            t = build_filter_group_tables(filters)
            assert np.array_equal(t.execute(window), dense(filters, window))

    def test_bit_exact_with_chunking(self, rng):
        filters = np.concatenate([np.full((2, 30), 2), rng.integers(-2, 3, size=(2, 30))], axis=1)
        window = rng.integers(-9, 10, size=60)
        for cap in (1, 3, 16):
            t = build_filter_group_tables(filters, max_group_size=cap)
            assert np.array_equal(t.execute(window), dense(filters, window))

    def test_bit_exact_with_layer_canonical(self, rng):
        filters = rng.integers(-2, 3, size=(2, 30))
        canonical = canonical_weight_order(np.arange(-5, 6))
        window = rng.integers(-9, 10, size=30)
        t = build_filter_group_tables(filters, canonical=canonical)
        assert np.array_equal(t.execute(window), dense(filters, window))

    def test_sparse_filters(self, rng):
        filters = rng.integers(-1, 2, size=(3, 40))
        filters[rng.random(size=filters.shape) < 0.7] = 0
        window = rng.integers(-9, 10, size=40)
        t = build_filter_group_tables(filters)
        assert np.array_equal(t.execute(window), dense(filters, window))

    def test_empty_tables_execute(self):
        t = build_filter_group_tables(np.zeros((2, 5), dtype=np.int64))
        assert np.array_equal(t.execute(np.arange(5)), np.zeros(2))

    def test_vectorized_matches_dense(self, rng):
        filters = rng.integers(-3, 4, size=(2, 20))
        windows = rng.integers(-9, 10, size=(6, 20))
        t = build_filter_group_tables(filters)
        assert np.array_equal(t.execute_vectorized(windows), dense(filters, windows.T))

    def test_window_length_checked(self):
        t = build_filter_group_tables(np.array([[1, 2]]))
        with pytest.raises(ValueError, match="window length"):
            t.execute(np.arange(5))


class TestStats:
    def test_entries_count(self):
        filters = np.array([[1, 0, 2], [0, 0, 1]])
        t = build_filter_group_tables(filters)
        assert t.stats().num_entries == 2

    def test_boundaries_monotone_across_levels(self, rng):
        filters = rng.integers(-2, 3, size=(3, 60))
        t = build_filter_group_tables(filters)
        b = t.stats().boundaries_per_level
        assert b[0] <= b[1] <= b[2]

    def test_multiplies_skip_zero_groups(self):
        # Filter 1 is all-zero at stored positions: no MACs for it.
        filters = np.array([[0, 0, 0], [1, 2, 1]])
        t = build_filter_group_tables(filters)
        macs = t.macs_per_entry()
        assert int(macs.sum()) == t.stats().multiplies
        assert t.stats().multiplies == 2  # filter 2's two groups only

    def test_g2_multiplies_at_most_sum_of_group_counts(self, rng):
        filters = rng.integers(-2, 3, size=(2, 50))
        t = build_filter_group_tables(filters)
        st = t.stats()
        assert st.multiplies <= st.boundaries_per_level[0] + st.boundaries_per_level[1]

    def test_stall_requires_two_macs(self):
        # Both filters non-zero at the single entry: 2 MACs, 1 multiplier.
        filters = np.array([[3], [4]])
        t = build_filter_group_tables(filters)
        assert t.multiplier_stalls(num_multipliers=1) == 1
        assert t.multiplier_stalls(num_multipliers=2) == 0

    def test_cycles_formula(self, rng):
        filters = rng.integers(-2, 3, size=(2, 40))
        t = build_filter_group_tables(filters)
        st = t.stats()
        assert st.cycles == st.num_entries + st.skip_bubbles + st.mult_stalls

    def test_dense_cycles(self):
        filters = np.ones((2, 10), dtype=np.int64)
        assert build_filter_group_tables(filters).stats().dense_cycles == 20

    def test_innermost_group_sizes_sum_to_entries(self, rng):
        filters = rng.integers(-2, 3, size=(3, 70))
        t = build_filter_group_tables(filters)
        assert int(t.innermost_group_sizes().sum()) == t.num_entries

    def test_chunk_early_macs_zero_when_groups_small(self, rng):
        filters = rng.integers(-8, 9, size=(2, 20))  # many values -> tiny groups
        t = build_filter_group_tables(filters)
        assert t.chunk_early_macs() == 0

    def test_chunk_early_macs_counted(self):
        filters = np.full((1, 40), 7, dtype=np.int64)
        t = build_filter_group_tables(filters, max_group_size=16)
        assert t.chunk_early_macs() == 2  # ceil(40/16) - 1


class TestSkipAccounting:
    def test_no_skips_with_own_canonical_g1(self, rng):
        """G=1 keyed to its own values never skips (all values present)."""
        filt = rng.integers(-3, 4, size=60).reshape(1, -1)
        t = build_filter_group_tables(filt)
        assert t.skip_entry_bubbles() == 0

    def test_layer_canonical_can_cause_skips_g1(self):
        """A tile missing mid-order values needs pointer skips."""
        canonical = np.array([9, 8, 7, 6, 5, 1, 0])  # descending, zero last
        filt = np.array([[9, 1]])  # misses ranks 1..4 between 9 and 1
        t = build_filter_group_tables(filt, canonical=canonical)
        assert t.skip_needs[0].sum() == 4
        # 4 skips, inline capacity 3 -> 1 skip entry.
        assert t.skip_entry_bubbles() == 1

    def test_trailing_gap_free(self):
        """Values after the last present rank cost nothing (filter done)."""
        canonical = np.array([9, 8, 7, 0])
        filt = np.array([[9, 9]])
        t = build_filter_group_tables(filt, canonical=canonical)
        assert t.skip_entry_bubbles() == 0

    def test_zero_boundaries_free(self):
        """Transitions into the zero group never cost skips."""
        canonical = np.array([9, 8, 7, 6, 5, 0])
        filters = np.array([[9, 0, 0], [9, 5, 5]])
        t = build_filter_group_tables(filters, canonical=canonical)
        # Filter 1's zero group (entries 1, 2) ends in a zero boundary.
        assert t.skip_needs[0][t.ranks[0] == 5].sum() == 0

    def test_g2_empty_subgroup_skips(self):
        """An absent middle sub-group forces a pointer skip for filter 2."""
        # canonical: 3, 2, 1 (no zero). Filter1 constant -> one group.
        canonical = np.array([3, 2, 1])
        filters = np.array([[3, 3], [3, 1]])  # filter2 present: ranks 0, 2
        t = build_filter_group_tables(filters, canonical=canonical)
        assert t.skip_needs[1].sum() == 1
        assert t.skip_entry_bubbles() == 0  # within inline capacity

    def test_inline_capacity_constant(self):
        assert INLINE_SKIP_CAPACITY == 3

    def test_pointer_resets_per_parent_group(self):
        """Filter 2's rank pointer restarts in each filter-1 group."""
        canonical = np.array([4, 3, 2, 1])
        # Two filter-1 groups; filter 2 uses rank 3 (value 1) in both.
        filters = np.array([[4, 4, 3, 3], [4, 1, 4, 1]])
        t = build_filter_group_tables(filters, canonical=canonical)
        # In each parent group: visit rank 0 then rank 3 -> skip 2 each.
        assert t.skip_needs[1].sum() == 4
