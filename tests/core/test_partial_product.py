"""Tests for partial product reuse (Section III-C extension)."""

import numpy as np
import pytest

from repro.core.partial_product import (
    conv1d_dense,
    memoized_conv1d,
    partial_product_savings,
)


class TestConv1d:
    def test_dense_known_values(self):
        # Figure 1a's example: filter {a, b, a} with a=2, b=3.
        inputs = np.array([1, 2, 3, 4, 5])
        filt = np.array([2, 3, 2])
        out = conv1d_dense(inputs, filt)
        assert list(out) == [2 * 1 + 3 * 2 + 2 * 3, 2 * 2 + 3 * 3 + 2 * 4, 2 * 3 + 3 * 4 + 2 * 5]

    def test_filter_too_long(self):
        with pytest.raises(ValueError, match="longer"):
            conv1d_dense(np.array([1]), np.array([1, 2]))


class TestMemoizedConv1d:
    def test_bit_exact(self, rng):
        for __ in range(20):
            n = int(rng.integers(3, 60))
            r = int(rng.integers(1, min(n, 8)))
            inputs = rng.integers(-9, 10, size=n)
            filt = rng.integers(-3, 4, size=r)
            out, __stats = memoized_conv1d(inputs, filt)
            assert np.array_equal(out, conv1d_dense(inputs, filt))

    def test_figure1c_saves_a_third(self):
        """Filter {a, b, a}: the repeated tap a halves a's multiplies as
        the filter slides (Figure 1c's memoization)."""
        inputs = np.arange(1, 30)
        filt = np.array([2, 3, 2])  # a=2 appears twice
        __, stats = memoized_conv1d(inputs, filt)
        assert stats.memo_hits > 0
        assert stats.multiply_savings > 1.3

    def test_no_repetition_no_savings(self):
        inputs = np.arange(1, 20)
        filt = np.array([1, 2, 3])  # all taps distinct
        __, stats = memoized_conv1d(inputs, filt)
        # Only boundary effects: interior products unique per (value, site).
        assert stats.multiply_savings == pytest.approx(1.0, abs=0.01)

    def test_zero_taps_skipped(self):
        inputs = np.arange(1, 10)
        filt = np.array([0, 5, 0])
        __, stats = memoized_conv1d(inputs, filt)
        assert stats.dense_multiplies == 7  # one non-zero tap per position


class TestLayerSavings:
    def test_cross_filter_reuse(self, rng):
        # Many filters sharing few values within each channel.
        weights = rng.choice([1, 2, -1], size=(16, 4, 3, 3)).astype(np.int64)
        stats = partial_product_savings(weights, out_positions=10)
        # Per channel: up to 3 unique values vs 16*9 non-zero taps.
        assert stats.multiply_savings > 10

    def test_shape_check(self):
        with pytest.raises(ValueError, match="K, C, R, S"):
            partial_product_savings(np.zeros((2, 2)), 1)

    def test_savings_scale_with_k(self, rng):
        few = partial_product_savings(
            rng.choice([1, 2], size=(2, 4, 3, 3)).astype(np.int64), 10)
        many = partial_product_savings(
            rng.choice([1, 2], size=(64, 4, 3, 3)).astype(np.int64), 10)
        assert many.multiply_savings > few.multiply_savings
