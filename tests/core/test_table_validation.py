"""Failure-injection tests: malformed tables must be rejected loudly.

The offline table generator is trusted, but anything *loading* tables
(e.g. from a serialized model) must not silently compute garbage — the
dataclass validators are the guard rail.
"""

import numpy as np
import pytest

from repro.core.indirection import FactorizedFilter, factorize_filter


class TestFactorizedFilterValidation:
    def good(self):
        return factorize_filter(np.array([1, 1, 2, 0, 2]))

    def test_length_mismatch_rejected(self):
        good = self.good()
        with pytest.raises(ValueError, match="same length"):
            FactorizedFilter(
                iit=good.iit[:-1], wit=good.wit,
                weight_buffer=good.weight_buffer, filter_size=good.filter_size)

    def test_missing_final_transition_rejected(self):
        good = self.good()
        wit = good.wit.copy()
        wit[-1] = False
        with pytest.raises(ValueError, match="transition bits"):
            FactorizedFilter(iit=good.iit, wit=wit,
                             weight_buffer=good.weight_buffer, filter_size=good.filter_size)

    def test_weight_buffer_size_mismatch_rejected(self):
        good = self.good()
        with pytest.raises(ValueError, match="transition bits"):
            FactorizedFilter(iit=good.iit, wit=good.wit,
                             weight_buffer=good.weight_buffer[:-1],
                             filter_size=good.filter_size)

    def test_group_sizes_recovered(self):
        good = self.good()
        rebuilt = FactorizedFilter(
            iit=good.iit, wit=good.wit,
            weight_buffer=good.weight_buffer, filter_size=good.filter_size)
        assert np.array_equal(rebuilt.group_sizes, good.group_sizes)

    def test_empty_tables_valid(self):
        empty = FactorizedFilter(
            iit=np.zeros(0, dtype=np.int64), wit=np.zeros(0, dtype=bool),
            weight_buffer=np.zeros(0, dtype=np.int64), filter_size=4)
        assert empty.num_entries == 0
        assert empty.num_multiplies == 0


class TestCorruptedExecution:
    def test_out_of_range_window_index_raises(self):
        """A table pointing outside the tile must fail, not wrap."""
        good = factorize_filter(np.array([1, 2, 1]))
        bad = FactorizedFilter(
            iit=np.array([0, 2, 5]),  # 5 is out of the 3-entry window...
            wit=good.wit, weight_buffer=good.weight_buffer, filter_size=3)
        with pytest.raises(IndexError):
            bad.execute(np.array([1, 2, 3]))

    def test_filter_size_guard(self):
        good = factorize_filter(np.array([1, 2, 1]))
        with pytest.raises(ValueError, match="window length"):
            good.execute(np.array([1, 2, 3, 4]))
