"""Hypothesis property tests for the core invariants.

These are the load-bearing guarantees of the reproduction:

1. every factorized execution path is *bit-exact* against the dense
   integer reference, for any weights/inputs/G/chunk-cap;
2. indirection tables are permutations of the non-zero support;
3. jump encoding round-trips exactly at any width;
4. the banked layout is conflict-free for any geometry.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.banking import BankedLayout
from repro.core.activation_groups import canonical_weight_order, rank_by_canonical
from repro.core.hierarchical import build_filter_group_tables
from repro.core.indirection import factorize_filter
from repro.core.jump_encoding import encode_jumps, jump_hop_count
from repro.quant.inq import quantize_inq
from repro.quant.ttq import quantize_ttq
from repro.quant.uniform import quantize_uniform

small_ints = st.integers(min_value=-6, max_value=6)


@st.composite
def filter_and_window(draw, max_len=64):
    n = draw(st.integers(min_value=1, max_value=max_len))
    filt = draw(st.lists(small_ints, min_size=n, max_size=n))
    window = draw(st.lists(st.integers(min_value=-100, max_value=100), min_size=n, max_size=n))
    return np.array(filt, dtype=np.int64), np.array(window, dtype=np.int64)


@st.composite
def filter_group_and_window(draw, max_g=4, max_len=48):
    g = draw(st.integers(min_value=1, max_value=max_g))
    n = draw(st.integers(min_value=1, max_value=max_len))
    filters = np.array(
        [draw(st.lists(small_ints, min_size=n, max_size=n)) for __ in range(g)],
        dtype=np.int64,
    )
    window = np.array(
        draw(st.lists(st.integers(min_value=-100, max_value=100), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    return filters, window


@given(filter_and_window(), st.integers(min_value=1, max_value=20))
@settings(max_examples=120, deadline=None)
def test_factorized_dot_product_bit_exact(fw, cap):
    filt, window = fw
    ff = factorize_filter(filt, max_group_size=cap)
    assert ff.execute(window) == int(filt @ window)


@given(filter_and_window())
@settings(max_examples=80, deadline=None)
def test_iit_is_permutation_of_nonzero_support(fw):
    filt, __ = fw
    ff = factorize_filter(filt)
    assert sorted(ff.iit) == sorted(np.flatnonzero(filt))


@given(filter_and_window())
@settings(max_examples=80, deadline=None)
def test_transition_count_matches_unique_nonzero(fw):
    filt, __ = fw
    ff = factorize_filter(filt)
    expected = np.unique(filt[filt != 0]).size
    assert int(ff.wit.sum()) == expected


@given(filter_group_and_window(), st.integers(min_value=1, max_value=20))
@settings(max_examples=120, deadline=None)
def test_hierarchical_execution_bit_exact(fg, cap):
    filters, window = fg
    tables = build_filter_group_tables(filters, max_group_size=cap)
    assert np.array_equal(tables.execute(window), filters @ window)


@given(filter_group_and_window())
@settings(max_examples=60, deadline=None)
def test_hierarchical_transitions_nested(fg):
    filters, __ = fg
    tables = build_filter_group_tables(filters)
    for g in range(tables.num_filters - 1):
        assert np.all(~tables.transitions[g] | tables.transitions[g + 1])


@given(filter_group_and_window())
@settings(max_examples=60, deadline=None)
def test_hierarchical_with_layer_canonical_bit_exact(fg):
    filters, window = fg
    canonical = canonical_weight_order(np.arange(-6, 7))
    tables = build_filter_group_tables(filters, canonical=canonical)
    assert np.array_equal(tables.execute(window), filters @ window)


@given(filter_and_window())
@settings(max_examples=60, deadline=None)
def test_rank_round_trip(fw):
    filt, __ = fw
    canonical = canonical_weight_order(filt)
    ranks = rank_by_canonical(filt, canonical)
    assert np.array_equal(canonical[ranks], filt)


@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=80, unique=True),
    st.integers(min_value=2, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_jump_encoding_round_trip(addresses, width):
    addresses = np.array(addresses, dtype=np.int64)
    table = encode_jumps(addresses, width)
    assert np.array_equal(table.decode(), addresses)
    assert table.num_hops == jump_hop_count(addresses, width)


@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=60, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_wider_jumps_never_more_hops(addresses):
    addresses = np.array(addresses, dtype=np.int64)
    hops = [jump_hop_count(addresses, w) for w in range(2, 12)]
    assert all(a >= b for a, b in zip(hops, hops[1:]))


@given(
    st.integers(min_value=1, max_value=11),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_banked_layout_conflict_free(r, s, ct, vw):
    layout = BankedLayout(r=r, s=s, channel_tile=ct, vw=vw)
    assert layout.is_conflict_free()
    assert 0.0 <= layout.wasted_fraction < 0.5 or vw == 1


@given(st.lists(st.floats(min_value=-2, max_value=2, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_inq_values_are_pow2_grid(weights):
    q = quantize_inq(np.array(weights))
    mags = np.abs(q.values[q.values != 0])
    if mags.size:
        assert np.all((mags & (mags - 1)) == 0)  # powers of two
    assert q.num_unique <= 17


@given(st.lists(st.floats(min_value=-2, max_value=2, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_ttq_is_ternary(weights):
    q = quantize_ttq(np.array(weights))
    assert q.num_unique <= 3


@given(
    st.lists(st.floats(min_value=-2, max_value=2, allow_nan=False), min_size=1, max_size=200),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_uniform_respects_bit_budget(weights, bits):
    q = quantize_uniform(np.array(weights), bits=bits)
    assert q.num_unique <= 2**bits
    assert q.values.max(initial=0) <= 2 ** (bits - 1) - 1
    assert q.values.min(initial=0) >= -(2 ** (bits - 1))
