"""Tests for single-filter factorization tables (iiT / wiT)."""

import numpy as np
import pytest

from repro.core.indirection import DEFAULT_MAX_GROUP_SIZE, factorize_filter


class TestTableConstruction:
    def test_entries_are_nonzero_positions(self):
        filt = np.array([0, 3, 0, -1, 3])
        ff = factorize_filter(filt)
        assert sorted(ff.iit) == sorted(np.flatnonzero(filt))

    def test_entries_grouped_by_value(self):
        filt = np.array([1, 2, 1, 2, 1])
        ff = factorize_filter(filt)
        values = filt[ff.iit]
        # Once a value changes it must never reappear (group-contiguous).
        seen = set()
        prev = None
        for v in values:
            if v != prev:
                assert v not in seen
                seen.add(v)
                prev = v

    def test_addresses_ascend_within_group(self):
        filt = np.array([1, 2, 1, 2, 1, 0, 2])
        ff = factorize_filter(filt)
        boundaries = np.flatnonzero(ff.wit)
        start = 0
        for end in boundaries:
            segment = ff.iit[start : end + 1]
            assert list(segment) == sorted(segment)
            start = end + 1

    def test_transition_bits_count_equals_groups(self):
        filt = np.array([1, -1, 2, 2, 1, 0])
        ff = factorize_filter(filt)
        assert int(np.sum(ff.wit)) == ff.num_groups == 3

    def test_last_entry_always_transition(self):
        ff = factorize_filter(np.array([4, 4, 1]))
        assert bool(ff.wit[-1])

    def test_weight_buffer_canonical_order_zero_excluded(self):
        filt = np.array([1, -8, 0, 2, -8])
        ff = factorize_filter(filt)
        assert list(ff.weight_buffer) == [-8, 2, 1]

    def test_weight_buffer_alignment(self):
        """The i-th transition consumes the i-th weight-buffer entry."""
        filt = np.array([3, 3, -2, 5, 0, 5])
        ff = factorize_filter(filt)
        boundaries = np.flatnonzero(ff.wit)
        for i, b in enumerate(boundaries):
            assert filt[ff.iit[b]] == ff.weight_buffer[i]

    def test_all_zero_filter_empty_tables(self):
        ff = factorize_filter(np.zeros(6, dtype=np.int64))
        assert ff.num_entries == 0
        assert ff.num_groups == 0
        assert ff.execute(np.arange(6)) == 0

    def test_invalid_max_group_size(self):
        with pytest.raises(ValueError, match="max_group_size"):
            factorize_filter(np.array([1]), max_group_size=0)

    def test_group_sizes_derived(self):
        ff = factorize_filter(np.array([1, 1, 2, 0, 2, 2]))
        assert sorted(ff.group_sizes) == [2, 3]


class TestExecution:
    def test_matches_dense_small(self):
        filt = np.array([2, -1, 2, 0, 3])
        window = np.array([5, 7, -2, 100, 1])
        ff = factorize_filter(filt)
        assert ff.execute(window) == int(filt @ window)

    def test_matches_dense_randomized(self, rng):
        for __ in range(30):
            n = int(rng.integers(1, 80))
            filt = rng.integers(-4, 5, size=n)
            window = rng.integers(-50, 51, size=n)
            ff = factorize_filter(filt)
            assert ff.execute(window) == int(filt.astype(np.int64) @ window.astype(np.int64))

    def test_chunked_execution_bit_exact(self, rng):
        """Max-group-size chunking must not change the result."""
        filt = np.full(40, 3, dtype=np.int64)  # one giant group
        window = rng.integers(-9, 10, size=40)
        for cap in (1, 2, 7, 16, 100):
            ff = factorize_filter(filt, max_group_size=cap)
            assert ff.execute(window) == int(filt @ window)

    def test_vectorized_matches_scalar(self, rng):
        filt = rng.integers(-3, 4, size=30)
        windows = rng.integers(-9, 10, size=(5, 30))
        ff = factorize_filter(filt)
        vec = ff.execute_vectorized(windows)
        assert list(vec) == [ff.execute(w) for w in windows]

    def test_window_length_checked(self):
        ff = factorize_filter(np.array([1, 2]))
        with pytest.raises(ValueError, match="window length"):
            ff.execute(np.array([1, 2, 3]))

    def test_vectorized_shape_checked(self):
        ff = factorize_filter(np.array([1, 2]))
        with pytest.raises(ValueError, match="windows must be"):
            ff.execute_vectorized(np.zeros((3, 5), dtype=np.int64))


class TestCounts:
    def test_multiplies_equal_groups_without_chunking(self):
        filt = np.array([1, 1, 2, 2, 3, 3, 0])
        ff = factorize_filter(filt)
        assert ff.num_multiplies == 3

    def test_chunking_adds_multiplies(self):
        filt = np.full(33, 5, dtype=np.int64)
        ff = factorize_filter(filt, max_group_size=16)
        assert ff.num_multiplies == 3  # ceil(33/16)

    def test_default_max_group_size_is_paper_value(self):
        assert DEFAULT_MAX_GROUP_SIZE == 16

    def test_adds_count(self):
        # 5 entries, 2 groups: 3 accumulator adds + 2 MAC adds.
        filt = np.array([1, 1, 1, 2, 2])
        ff = factorize_filter(filt)
        assert ff.num_adds == 5

    def test_multiply_reduction_vs_dense(self):
        """The headline saving: multiplies drop from R*S*C to ~U."""
        rng = np.random.default_rng(0)
        filt = rng.choice([1, 2, 3, -1, -2, -3], size=900)
        ff = factorize_filter(filt)
        assert ff.num_multiplies <= 6 * int(np.ceil(900 / 16 / 6) + 6)
        assert ff.num_multiplies < 900 / 10
