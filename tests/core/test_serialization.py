"""Tests for the packed UCNN model format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import build_filter_group_tables
from repro.core.jump_encoding import min_pointer_bits
from repro.core.model_size import wit_bits_per_entry
from repro.core.serialization import (
    BitReader,
    BitWriter,
    execute_unpacked,
    pack_layer,
    pack_tables,
    unpack_tables,
)


class TestBitStream:
    def test_round_trip_values(self):
        writer = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (1, 1), (255, 8)]
        for value, width in values:
            writer.write(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read(width) == value

    def test_value_must_fit(self):
        with pytest.raises(ValueError, match="fit"):
            BitWriter().write(8, 3)

    def test_exhaustion_detected(self):
        writer = BitWriter()
        writer.write(1, 1)
        reader = BitReader(writer.getvalue())
        reader.read(8)  # padding allows up to the byte boundary
        with pytest.raises(ValueError, match="exhausted"):
            reader.read(1)

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, pairs):
        writer = BitWriter()
        clipped = [(v % (1 << w), w) for v, w in pairs]
        for v, w in clipped:
            writer.write(v, w)
        reader = BitReader(writer.getvalue())
        for v, w in clipped:
            assert reader.read(w) == v


class TestPackUnpack:
    def tables(self, rng, g=2, n=40):
        filters = rng.integers(-3, 4, size=(g, n))
        return filters, build_filter_group_tables(filters)

    def test_round_trip_structures(self, rng):
        filters, tables = self.tables(rng)
        unpacked = unpack_tables(pack_tables(tables))
        assert unpacked.group_size == 2
        assert np.array_equal(unpacked.iit, tables.iit)
        assert np.array_equal(unpacked.transitions, tables.transitions)
        assert np.array_equal(unpacked.canonical, tables.canonical)

    def test_round_trip_execution(self, rng):
        filters, tables = self.tables(rng)
        window = rng.integers(-9, 10, size=40)
        unpacked = unpack_tables(pack_tables(tables))
        out = execute_unpacked(unpacked, filters, window)
        assert np.array_equal(out, filters @ window)

    def test_negative_weights_survive(self, rng):
        filters = np.array([[-7, 3, -7, 0]])
        tables = build_filter_group_tables(filters)
        unpacked = unpack_tables(pack_tables(tables))
        assert -7 in unpacked.canonical

    def test_bad_magic_rejected(self, rng):
        __, tables = self.tables(rng)
        data = bytearray(pack_tables(tables).data)
        data[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            unpack_tables(bytes(data))

    def test_table_bits_match_model_size_accounting(self, rng):
        """The packed payload charges exactly the Figure 13 widths."""
        filters, tables = self.tables(rng, g=2, n=60)
        packed = pack_tables(tables, weight_bits=16)
        pointer = min_pointer_bits(tables.filter_size)
        expected = (
            tables.num_entries * (pointer + wit_bits_per_entry(2))
            + tables.num_unique * 16
        )
        assert packed.table_bits == expected

    def test_empty_tables_pack(self):
        tables = build_filter_group_tables(np.zeros((2, 5), dtype=np.int64))
        unpacked = unpack_tables(pack_tables(tables))
        assert unpacked.iit.size == 0


class TestPackLayer:
    def test_blob_count(self, rng):
        weights = rng.integers(-2, 3, size=(6, 8, 3, 3))
        blobs = pack_layer(weights, group_size=2, channel_tile=4)
        assert len(blobs) == 3 * 2  # 3 filter groups x 2 channel tiles

    def test_total_bits_scale_with_density(self, rng):
        dense = rng.integers(1, 3, size=(4, 8, 3, 3))
        sparse = dense.copy()
        sparse[rng.random(size=sparse.shape) < 0.6] = 0
        bits_dense = sum(b.table_bits for b in pack_layer(dense, 2))
        bits_sparse = sum(b.table_bits for b in pack_layer(sparse, 2))
        assert bits_sparse < bits_dense

    def test_every_blob_decodes(self, rng):
        weights = rng.integers(-2, 3, size=(4, 6, 3, 3))
        for blob in pack_layer(weights, group_size=2, channel_tile=3):
            unpacked = unpack_tables(blob)
            assert unpacked.group_size == 2
