"""Tests for FactorizedDotProduct / FactorizedConv."""

import numpy as np
import pytest

from repro.core.factorized import FactorizedConv, FactorizedDotProduct, OpCounts
from repro.nn.reference import conv2d_im2col


class TestFactorizedDotProduct:
    def test_outputs_match_dense(self, rng):
        filters = rng.integers(-3, 4, size=(2, 30))
        window = rng.integers(-9, 10, size=30)
        fdp = FactorizedDotProduct(filters)
        assert np.array_equal(fdp.compute(window), filters @ window)

    def test_compute_many(self, rng):
        filters = rng.integers(-3, 4, size=(3, 20))
        windows = rng.integers(-9, 10, size=(7, 20))
        fdp = FactorizedDotProduct(filters)
        assert np.array_equal(fdp.compute_many(windows), filters @ windows.T)

    def test_stats_available(self, rng):
        fdp = FactorizedDotProduct(rng.integers(-2, 3, size=(2, 40)))
        st = fdp.stats()
        assert st.num_entries <= 40
        assert st.num_filters == 2


class TestFactorizedConv:
    @pytest.mark.parametrize("group_size", [1, 2, 3])
    def test_forward_matches_reference(self, group_size, rng):
        weights = rng.integers(-3, 4, size=(5, 3, 3, 3))
        inputs = rng.integers(-8, 9, size=(3, 8, 8))
        conv = FactorizedConv(weights, group_size=group_size)
        assert np.array_equal(conv.forward(inputs), conv2d_im2col(inputs, weights))

    def test_forward_fast_matches_forward(self, rng):
        weights = rng.integers(-3, 4, size=(4, 2, 3, 3))
        inputs = rng.integers(-8, 9, size=(2, 9, 9))
        conv = FactorizedConv(weights, group_size=2)
        assert np.array_equal(conv.forward(inputs), conv.forward_fast(inputs))

    def test_forward_per_entry_matches_engine_forward(self, rng):
        weights = rng.integers(-3, 4, size=(4, 2, 3, 3))
        inputs = rng.integers(-8, 9, size=(2, 9, 9))
        conv = FactorizedConv(weights, group_size=2, padding=1)
        assert np.array_equal(conv.forward(inputs), conv.forward_per_entry(inputs))

    def test_float_inputs_raise(self, rng):
        conv = FactorizedConv(rng.integers(-2, 3, size=(2, 3, 3, 3)))
        with pytest.raises(ValueError, match="integer inputs"):
            conv.forward(rng.normal(size=(3, 8, 8)))

    def test_float_weights_raise(self, rng):
        with pytest.raises(ValueError, match="integer weights"):
            FactorizedConv(rng.normal(size=(2, 3, 3, 3)))

    def test_compiled_program_attached(self, rng):
        conv = FactorizedConv(rng.integers(-2, 3, size=(4, 2, 3, 3)), group_size=2)
        assert conv.program.num_filters == 4
        assert conv.program.num_groups == 2

    def test_stride_and_padding(self, rng):
        weights = rng.integers(-3, 4, size=(3, 2, 3, 3))
        inputs = rng.integers(-8, 9, size=(2, 10, 10))
        conv = FactorizedConv(weights, group_size=2, stride=2, padding=1)
        ref = conv2d_im2col(inputs, weights, stride=2, padding=1)
        assert np.array_equal(conv.forward(inputs), ref)

    def test_k_not_divisible_by_g(self, rng):
        weights = rng.integers(-3, 4, size=(5, 2, 2, 2))
        inputs = rng.integers(-8, 9, size=(2, 6, 6))
        conv = FactorizedConv(weights, group_size=2)
        assert len(conv.groups) == 3
        assert conv.groups[-1].num_filters == 1
        assert np.array_equal(conv.forward(inputs), conv2d_im2col(inputs, weights))

    def test_sparse_weights(self, rng):
        weights = rng.integers(-2, 3, size=(4, 3, 3, 3))
        weights[rng.random(size=weights.shape) < 0.6] = 0
        inputs = rng.integers(-8, 9, size=(3, 7, 7))
        conv = FactorizedConv(weights, group_size=2)
        assert np.array_equal(conv.forward(inputs), conv2d_im2col(inputs, weights))

    def test_channel_mismatch_raises(self, rng):
        conv = FactorizedConv(rng.integers(-2, 3, size=(2, 3, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            conv.forward(rng.integers(-8, 9, size=(4, 8, 8)))

    def test_bad_weights_shape(self):
        with pytest.raises(ValueError, match="K, C, R, S"):
            FactorizedConv(np.zeros((2, 3, 3), dtype=np.int64))

    def test_bad_group_size(self):
        with pytest.raises(ValueError, match="group_size"):
            FactorizedConv(np.zeros((2, 3, 3, 3), dtype=np.int64), group_size=0)

    def test_layer_canonical_shares_weight_order(self, rng):
        weights = rng.integers(-3, 4, size=(4, 2, 3, 3))
        conv = FactorizedConv(weights, group_size=2, layer_canonical=True)
        canon = conv.canonical
        for tables in conv.groups:
            assert np.array_equal(tables.canonical, canon)

    def test_op_counts_savings(self, rng):
        weights = rng.choice([0, 1, 2, -1], size=(8, 4, 3, 3)).astype(np.int64)
        conv = FactorizedConv(weights, group_size=2)
        counts = conv.op_counts(out_positions=10)
        assert isinstance(counts, OpCounts)
        assert counts.dense_multiplies == 8 * 4 * 9 * 10
        assert counts.multiplies < counts.dense_multiplies
        assert counts.multiply_savings > 1.0

    def test_op_counts_additive(self, rng):
        weights = rng.integers(-2, 3, size=(2, 2, 2, 2))
        conv = FactorizedConv(weights)
        a = conv.op_counts(3)
        b = conv.op_counts(3)
        total = a + b
        assert total.multiplies == 2 * a.multiplies
        assert total.input_reads == 2 * a.input_reads
