"""Tests for activation groups and the canonical weight order."""

import numpy as np
import pytest

from repro.core.activation_groups import (
    ActivationGroup,
    build_activation_groups,
    canonical_weight_order,
    factored_dot_product_reference,
    group_sizes,
    rank_by_canonical,
)


class TestCanonicalWeightOrder:
    def test_zero_sorted_last(self):
        order = canonical_weight_order(np.array([0, 3, -1, 2]))
        assert order[-1] == 0

    def test_descending_magnitude(self):
        order = canonical_weight_order(np.array([1, -4, 2, 8]))
        assert list(np.abs(order)) == sorted(np.abs(order), reverse=True)

    def test_positive_before_negative_on_tie(self):
        order = canonical_weight_order(np.array([-4, 4, -2, 2]))
        assert list(order) == [4, -4, 2, -2]

    def test_no_zero_when_absent(self):
        order = canonical_weight_order(np.array([5, -5, 1]))
        assert 0 not in order

    def test_duplicates_collapsed(self):
        order = canonical_weight_order(np.array([3, 3, 3, -1, -1]))
        assert order.size == 2

    def test_single_value(self):
        assert list(canonical_weight_order(np.array([7, 7]))) == [7]

    def test_all_zero(self):
        assert list(canonical_weight_order(np.zeros(4, dtype=np.int64))) == [0]

    def test_deterministic(self):
        values = np.array([4, -4, 0, 1, -3])
        a = canonical_weight_order(values)
        b = canonical_weight_order(values[::-1])
        assert np.array_equal(a, b)


class TestRankByCanonical:
    def test_ranks_match_positions(self):
        canonical = canonical_weight_order(np.array([0, 2, -1]))
        ranks = rank_by_canonical(np.array([2, -1, 0, 2]), canonical)
        assert list(ranks) == [0, 1, 2, 0]

    def test_shape_preserved(self):
        canonical = np.array([3, 1, 0])
        values = np.array([[1, 3], [0, 0]])
        assert rank_by_canonical(values, canonical).shape == (2, 2)

    def test_missing_value_raises(self):
        with pytest.raises(ValueError, match="not present"):
            rank_by_canonical(np.array([9]), np.array([1, 2, 0]))


class TestBuildActivationGroups:
    def test_group_per_unique_nonzero(self):
        filt = np.array([2, 2, -1, 0, -1, 2])
        groups = build_activation_groups(filt)
        assert [g.weight for g in groups] == [2, -1]

    def test_sizes_are_repetition_counts(self):
        filt = np.array([2, 2, -1, 0, -1, 2])
        assert [g.size for g in build_activation_groups(filt)] == [3, 2]

    def test_indices_point_at_weight(self):
        filt = np.array([5, 0, 5, -3])
        for group in build_activation_groups(filt):
            assert np.all(filt[group.indices] == group.weight)

    def test_zero_group_excluded_by_default(self):
        filt = np.array([0, 0, 1])
        assert all(g.weight != 0 for g in build_activation_groups(filt))

    def test_zero_group_included_on_request(self):
        filt = np.array([0, 0, 1])
        groups = build_activation_groups(filt, include_zero=True)
        assert groups[-1].weight == 0 and groups[-1].size == 2

    def test_groups_partition_nonzero_positions(self):
        filt = np.array([1, -1, 0, 1, 2, 2, 0])
        indices = np.concatenate([g.indices for g in build_activation_groups(filt)])
        assert sorted(indices) == sorted(np.flatnonzero(filt))

    def test_gather_sum(self):
        group = ActivationGroup(weight=3, indices=np.array([0, 2]))
        assert group.gather_sum(np.array([10, 99, -4])) == 6

    def test_group_sizes_helper(self):
        # Canonical order: -2 (larger magnitude) first, then 1.
        filt = np.array([1, 1, 1, -2, 0])
        assert list(group_sizes(filt)) == [1, 3]


class TestFactoredDotProductReference:
    def test_matches_dense(self, rng):
        for __ in range(20):
            n = int(rng.integers(1, 40))
            filt = rng.integers(-3, 4, size=n)
            window = rng.integers(-9, 10, size=n)
            expected = int(np.dot(filt.astype(np.int64), window.astype(np.int64)))
            assert factored_dot_product_reference(filt, window) == expected

    def test_all_zero_filter(self):
        assert factored_dot_product_reference(np.zeros(5, dtype=int), np.arange(5)) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal flattened length"):
            factored_dot_product_reference(np.array([1, 2]), np.array([1, 2, 3]))
