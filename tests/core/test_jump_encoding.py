"""Tests for jump-based indirection table compression."""

import numpy as np
import pytest

from repro.core.jump_encoding import (
    JumpTable,
    encode_jumps,
    grouped_jump_stats,
    jump_hop_count,
    jump_limits,
    min_pointer_bits,
)


class TestJumpLimits:
    def test_two_bits(self):
        assert jump_limits(2) == (-2, 1)

    def test_eight_bits(self):
        assert jump_limits(8) == (-128, 127)

    def test_too_narrow(self):
        with pytest.raises(ValueError, match="jump width"):
            jump_limits(1)


class TestEncodeDecode:
    def test_simple_sequence(self):
        addrs = np.array([0, 1, 2, 10])
        table = encode_jumps(addrs, width_bits=4)
        assert np.array_equal(table.decode(), addrs)
        assert table.num_hops == 1  # 2 -> 10 needs one forward hop (max 7)

    def test_backward_jump(self):
        addrs = np.array([50, 10])
        table = encode_jumps(addrs, width_bits=4, base=49)
        assert np.array_equal(table.decode(), addrs)
        assert table.num_hops == 4  # delta -40, min jump -8 -> 4 hops

    def test_wide_enough_no_hops(self):
        addrs = np.array([5, 100, 3, 77])
        table = encode_jumps(addrs, width_bits=9)
        assert table.num_hops == 0

    def test_total_bits(self):
        addrs = np.array([0, 1])
        table = encode_jumps(addrs, width_bits=6)
        assert table.total_bits == table.num_entries * 6

    def test_overhead_factor(self):
        addrs = np.array([0, 100])
        table = encode_jumps(addrs, width_bits=4)
        assert table.overhead_factor() == table.num_entries / 2

    def test_empty_overhead(self):
        table = JumpTable(
            jumps=np.zeros(0, dtype=np.int64),
            is_hop=np.zeros(0, dtype=bool),
            width_bits=4,
        )
        assert table.overhead_factor() == 1.0

    def test_first_entry_relative_to_base(self):
        table = encode_jumps(np.array([0]), width_bits=4, base=-1)
        assert table.jumps[0] == 1


class TestHopCount:
    def test_matches_encoder(self, rng):
        for __ in range(40):
            n = int(rng.integers(1, 50))
            addrs = rng.choice(300, size=n, replace=False)
            width = int(rng.integers(2, 10))
            assert jump_hop_count(addrs, width) == encode_jumps(addrs, width).num_hops

    def test_empty(self):
        assert jump_hop_count(np.array([], dtype=np.int64), 4) == 0

    def test_monotone_in_width(self, rng):
        addrs = rng.choice(400, size=40, replace=False)
        hops = [jump_hop_count(addrs, w) for w in range(2, 11)]
        assert all(a >= b for a, b in zip(hops, hops[1:]))


class TestGroupedJumps:
    """The paper's actual scheme: within-group jumps + group anchors."""

    def test_anchor_per_group(self):
        # Two groups: addresses [0, 5, 9 | 2, 7], ends at indices 2, 4.
        addrs = np.array([0, 5, 9, 2, 7])
        ends = np.array([False, False, True, False, True])
        stats = grouped_jump_stats(addrs, ends, width_bits=4, pointer_bits=9)
        assert stats.anchor_entries == 2
        assert stats.jump_entries == 3
        assert stats.hop_entries == 0

    def test_iit_bits(self):
        addrs = np.array([0, 5, 9, 2, 7])
        ends = np.array([False, False, True, False, True])
        stats = grouped_jump_stats(addrs, ends, width_bits=4, pointer_bits=9)
        assert stats.iit_bits == 2 * 9 + 3 * 4

    def test_wide_gap_inserts_hops(self):
        # Gap of 20 with 3-bit jumps (capacity 7): ceil((20-7)/7) = 2 hops.
        addrs = np.array([0, 20])
        ends = np.array([False, True])
        stats = grouped_jump_stats(addrs, ends, width_bits=3, pointer_bits=9)
        assert stats.hop_entries == 2

    def test_group_boundary_gap_free(self):
        """Backward moves at group starts cost nothing (absolute anchor)."""
        addrs = np.array([100, 0])
        ends = np.array([True, True])
        stats = grouped_jump_stats(addrs, ends, width_bits=2, pointer_bits=9)
        assert stats.hop_entries == 0
        assert stats.anchor_entries == 2

    def test_non_ascending_within_group_rejected(self):
        addrs = np.array([5, 3])
        ends = np.array([False, True])
        with pytest.raises(ValueError, match="ascend"):
            grouped_jump_stats(addrs, ends, width_bits=4, pointer_bits=9)

    def test_wider_jumps_fewer_hops(self, rng):
        addrs = np.sort(rng.choice(500, size=40, replace=False))
        ends = np.zeros(40, dtype=bool)
        ends[-1] = True
        hops = [
            grouped_jump_stats(addrs, ends, w, 9).hop_entries
            for w in range(1, 10)
        ]
        assert all(a >= b for a, b in zip(hops, hops[1:]))

    def test_empty(self):
        stats = grouped_jump_stats(np.array([], dtype=np.int64), np.array([], dtype=bool), 4, 9)
        assert stats.total_entries == 0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="align"):
            grouped_jump_stats(np.array([1, 2]), np.array([True]), 4, 9)

    def test_real_table_addresses_encode(self, rng):
        """Addresses from a real hierarchical table satisfy the ascending
        invariant and encode without error."""
        from repro.core.hierarchical import build_filter_group_tables
        filters = rng.integers(-2, 3, size=(2, 60))
        tables = build_filter_group_tables(filters)
        ends = tables.transitions[1]
        stats = grouped_jump_stats(tables.iit, ends, width_bits=6, pointer_bits=6)
        assert stats.anchor_entries == int(ends.sum())


class TestPointerBits:
    def test_powers_of_two(self):
        assert min_pointer_bits(256) == 8
        assert min_pointer_bits(257) == 9
        assert min_pointer_bits(2) == 1

    def test_invalid(self):
        with pytest.raises(ValueError, match="filter_size"):
            min_pointer_bits(0)
