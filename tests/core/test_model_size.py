"""Tests for model-size accounting (Figure 13/14 machinery)."""

import pytest

from repro.core.model_size import (
    dcnn_sp_model_size,
    dense_model_size,
    inq_model_size,
    ttq_model_size,
    ucnn_model_size,
    wit_bits_per_entry,
)


class TestWitBits:
    def test_g1_has_two_bits(self):
        """Transition bit + the G-th filter's inline skip bit."""
        assert wit_bits_per_entry(1) == 2

    def test_g4(self):
        assert wit_bits_per_entry(4) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            wit_bits_per_entry(0)


class TestUcnnModelSize:
    def test_paper_formula_per_weight(self):
        """(|iiT.entry| + G*|wiT.entry|)/G per stored entry, Section IV-C."""
        # 512-entry tile -> 9-bit pointers; G=2 -> 3 wiT bits per entry.
        model = ucnn_model_size(
            stored_entries=1000, skip_entries=0, dense_weights=2000,
            group_size=2, filter_size=512, num_unique=17, weight_bits=16,
        )
        expected = (1000 * (9 + 3) + 17 * 16) / 2000
        assert model.bits_per_weight == pytest.approx(expected)

    def test_skip_entries_counted(self):
        a = ucnn_model_size(100, 0, 1000, 1, 256, 17, 8)
        b = ucnn_model_size(100, 10, 1000, 1, 256, 17, 8)
        assert b.total_bits > a.total_bits

    def test_jump_bits_shrink_entries(self):
        ptr = ucnn_model_size(100, 0, 1000, 1, 1024, 17, 8)
        jmp = ucnn_model_size(100, 0, 1000, 1, 1024, 17, 8, jump_bits=6)
        assert jmp.iit_bits < ptr.iit_bits

    def test_group_compression(self):
        """Larger G amortizes the iiT across filters (O(G) compression)."""
        g1 = ucnn_model_size(1000, 0, 1000, 1, 512, 17, 8)
        g2 = ucnn_model_size(1000, 0, 2000, 2, 512, 17, 8)
        assert g2.bits_per_weight < g1.bits_per_weight

    def test_addition(self):
        a = ucnn_model_size(100, 0, 1000, 1, 256, 17, 8)
        total = a + a
        assert total.dense_weights == 2000
        assert total.total_bits == 2 * a.total_bits
        assert total.bits_per_weight == pytest.approx(a.bits_per_weight)


class TestBaselines:
    def test_dcnn_sp_rle(self):
        model = dcnn_sp_model_size(nonzero_weights=500, dense_weights=1000, weight_bits=8)
        assert model.bits_per_weight == pytest.approx(0.5 * (8 + 5))

    def test_dense(self):
        assert dense_model_size(1000, 16).bits_per_weight == 16

    def test_ttq_two_bits(self):
        assert ttq_model_size(12345).bits_per_weight == 2

    def test_inq_five_bits(self):
        assert inq_model_size(999).bits_per_weight == 5

    def test_sparsity_helps_dcnn_sp(self):
        dense50 = dcnn_sp_model_size(500, 1000, 8)
        dense90 = dcnn_sp_model_size(900, 1000, 8)
        assert dense50.bits_per_weight < dense90.bits_per_weight
