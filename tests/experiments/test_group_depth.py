"""Tests for the group-reuse depth ablation (Section III-B claim)."""

import pytest

from repro.experiments import abl_group_depth


class TestGroupDepth:
    @pytest.fixture(scope="class")
    def lenet_inq(self):
        return abl_group_depth.run(network="lenet", num_unique=17, max_g=4)

    def test_every_layer_reported(self, lenet_inq):
        assert [p.layer for p in lenet_inq.points] == ["conv1", "conv2", "conv3"]

    def test_pigeonhole_matches_rule(self, lenet_inq):
        for p in lenet_inq.points:
            g = p.pigeonhole_g
            assert p.filter_size > 17**g or g == 1
            assert p.filter_size <= 17 ** (g + 1) or g == 4

    def test_big_filters_support_deeper_reuse(self, lenet_inq):
        by_name = {p.layer: p for p in lenet_inq.points}
        assert by_name["conv2"].max_useful_g >= by_name["conv1"].max_useful_g

    def test_small_u_goes_deeper(self):
        inq = abl_group_depth.run(network="lenet", num_unique=17, max_g=6)
        ttq = abl_group_depth.run(network="lenet", num_unique=3, max_g=6)
        assert ttq.majority_depth() >= inq.majority_depth()

    def test_majority_depth(self, lenet_inq):
        assert 1 <= lenet_inq.majority_depth() <= 4

    def test_rows_format(self, lenet_inq):
        rows = lenet_inq.format_rows()
        assert len(rows) == 3 and len(rows[0]) == 4
