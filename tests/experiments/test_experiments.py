"""Small-scope runs of every experiment runner.

Full-scale fidelity runs live in benchmarks/; these tests exercise every
runner end-to-end on reduced inputs and assert the paper's qualitative
shapes where they are already visible at small scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    abl_chunking,
    abl_l2_capacity,
    abl_partial_product,
    fig03_repetition,
    fig09_energy,
    fig10_layer_energy,
    fig11_runtime,
    fig12_inq_perf,
    fig13_model_size,
    fig14_jump_tables,
    tab02_configs,
    tab03_area,
)
from repro.experiments.common import (
    dump_json,
    format_table,
    geomean,
    network_shapes,
    stable_seed,
    uniform_weight_provider,
)


class TestCommon:
    def test_stable_seed_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_weight_provider_deterministic(self):
        shapes = network_shapes("lenet")
        provider = uniform_weight_provider(17, 0.5)
        assert np.array_equal(provider(shapes[0]), provider(shapes[0]))

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([-1.0])

    def test_format_table(self):
        text = format_table(("a", "bb"), [(1, 2.5)])
        assert "a" in text and "2.500" in text

    def test_dump_json(self, tmp_path):
        path = tmp_path / "x.json"
        dump_json({"a": np.int64(3), "b": np.array([1, 2])}, path)
        assert '"a": 3' in path.read_text()


class TestFig03:
    def test_lenet_layers(self):
        result = fig03_repetition.run(networks=("lenet",))
        reps = result.networks["lenet"]
        assert [r.name for r in reps] == ["conv1", "conv2", "conv3"]
        # Larger filters repeat more (pigeonhole).
        assert reps[1].nonzero_mean > reps[0].nonzero_mean

    def test_rows_format(self):
        result = fig03_repetition.run(networks=("lenet",))
        rows = result.format_rows()
        assert len(rows) == 3 and rows[0][0] == "lenet"


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_energy.run(networks=("lenet",), precisions=(16,), densities=(0.5,))

    def test_group_normalized_to_dcnn(self, result):
        group = result.group("lenet", 16, 0.5)
        assert group.entry("DCNN").total == pytest.approx(1.0)

    def test_ucnn_beats_dcnn_sp_at_16bit(self, result):
        group = result.group("lenet", 16, 0.5)
        for design in ("UCNN U3", "UCNN U17", "UCNN U256"):
            assert group.entry(design).total < group.entry("DCNN_sp").total

    def test_ordering_by_u(self, result):
        group = result.group("lenet", 16, 0.5)
        assert group.improvement_vs("UCNN U3") > group.improvement_vs("UCNN U17")

    def test_rows(self, result):
        rows = result.format_rows()
        assert len(rows) == 6  # one per design
        assert all(len(r) == 8 for r in rows)


class TestFig10:
    def test_small_run(self):
        result = fig10_layer_energy.run()
        assert set(result.groups) == {"64:64:3:3", "128:128:3:3", "256:256:3:3", "512:512:3:3"}
        for entries in result.groups.values():
            by_design = {e.design: e.total for e in entries}
            assert by_design["DCNN"] == pytest.approx(1.0)
            assert by_design["UCNN U3"] < 1.0


class TestFig11:
    def test_shapes(self):
        result = fig11_runtime.run(densities=(0.2, 0.8))
        g1 = {p.density: p.normalized_runtime for p in result.series("UCNN G1")}
        assert g1[0.2] == pytest.approx(0.2, abs=0.03)
        assert g1[0.2] < g1[0.8]
        g4 = {p.density: p.normalized_runtime for p in result.series("UCNN G4")}
        assert g4[0.2] > g1[0.2]  # union of 4 filters stores more


class TestFig12:
    def test_lenet_only(self):
        result = fig12_inq_perf.run(networks=("lenet",))
        assert result.speedup("lenet", "DCNN_sp VK1") == pytest.approx(1.0)
        assert result.speedup("lenet", "DCNN_sp VK2") == pytest.approx(2.0)
        g2 = result.speedup("lenet", "UCNN G2")
        assert 1.4 < g2 < 2.05
        g1 = result.speedup("lenet", "UCNN G1")
        assert 0.9 < g1 < 1.12  # far below the ideal 1.111 once drained


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_model_size.run(network="lenet", densities=(0.5, 0.9))

    def test_series_monotone_in_density(self, result):
        series = result.series("UCNN G2")
        assert series[0].bits_per_weight < series[-1].bits_per_weight

    def test_g_compresses(self, result):
        assert result.at("UCNN G4", 0.5) < result.at("UCNN G1", 0.5)

    def test_baselines(self, result):
        assert result.at("TTQ", 0.5) == 2.0
        assert result.at("INQ", 0.9) == 5.0
        assert result.at("DCNN_sp 8b", 0.5) == pytest.approx(6.5)


class TestFig14:
    def test_small_run(self):
        result = fig14_jump_tables.run(network="lenet", jump_widths=(5, 8), max_layers=2)
        for g in (1, 2):
            series = result.series(g)
            pointer = next(p for p in series if p.jump_bits is None)
            assert pointer.perf_overhead == 1.0
            narrow = next(p for p in series if p.jump_bits == 5)
            assert narrow.perf_overhead >= 1.0


class TestTables:
    def test_tab02(self):
        result = tab02_configs.run()
        assert len(result.rows) == 6
        assert all(r.dense_macs_per_cycle == 8 for r in result.rows)

    def test_tab03(self):
        result = tab03_area.run()
        assert 0.10 < result.overhead_u17 < 0.25
        assert result.overhead_u256 > result.overhead_u17
        assert len(result.format_rows()) == 7


class TestAblations:
    def test_chunking(self):
        result = abl_chunking.run(network="lenet", caps=(4, 16, 64))
        mult = [p.multiplies_per_walk for p in result.points]
        assert mult[0] >= mult[1] >= mult[2]

    def test_partial_product(self):
        result = abl_partial_product.run(network="lenet")
        assert all(p.factorization_savings > 1 for p in result.points)

    def test_l2_capacity(self):
        # 1K entries forces LeNet's activations to spill; 896K fits all.
        result = abl_l2_capacity.run(network="lenet", capacities_kb=(1, 896))
        assert result.points[-1].improvement >= result.points[0].improvement
