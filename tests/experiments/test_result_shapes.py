"""Result-shape invariants every golden-checked experiment must hold.

The regression harness only works if experiment results are (a) fully
JSON-serializable after ``_to_jsonable`` lowering and (b) byte-for-byte
deterministic across runs under the pinned seeds.  These tests pin both
properties at the registry level, plus the seeding helper contract the
committed references depend on.
"""

import json

import numpy as np
import pytest

from repro.core.seeding import stable_rng, stable_seed
from repro.experiments.common import _to_jsonable
from repro.regress import REGRESS_SPECS, SPECS_BY_ID, canonicalize, regenerate

#: Cheap enough to regenerate twice inside tier-1 (fig10 alone costs
#: ~3 s per run; the nightly full `repro regress --check` covers it).
FAST_IDS = ("fig03", "fig13", "tab02", "tab03", "abl-depth", "engine-digest")


class TestStableSeeding:
    def test_seed_is_pinned(self):
        # The committed references were generated from these exact
        # seeds; changing the hash recipe silently invalidates them.
        assert stable_seed("uniform", "conv1", 17, 0.9, "fig12") == 6364587448350995834
        assert stable_seed() == 724655455495936113

    def test_seed_depends_on_every_part(self):
        base = stable_seed("a", 1, 0.5)
        assert stable_seed("b", 1, 0.5) != base
        assert stable_seed("a", 2, 0.5) != base
        assert stable_seed("a", 1, 0.25) != base
        assert stable_seed("a", 1) != base

    def test_seed_fits_numpy(self):
        for parts in (("x",), ("y", 3), tuple()):
            seed = stable_seed(*parts)
            assert 0 <= seed < 2**63
            np.random.default_rng(seed)  # must not raise

    def test_rng_streams_reproduce(self):
        a = stable_rng("fig03", "lenet", "conv1").integers(0, 100, 8)
        b = stable_rng("fig03", "lenet", "conv1").integers(0, 100, 8)
        c = stable_rng("fig03", "lenet", "conv2").integers(0, 100, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestJsonLowering:
    def test_numpy_scalars_and_arrays(self):
        value = _to_jsonable({"f": np.float32(0.5), "i": np.int32(3),
                              "b": np.bool_(True), "a": np.array([[1, 2]])})
        assert json.loads(json.dumps(value)) == {
            "f": 0.5, "i": 3, "b": True, "a": [[1, 2]]}

    def test_dataclasses_and_tuples(self):
        from dataclasses import dataclass

        @dataclass
        class Point:
            g: int
            speedup: float

        value = _to_jsonable({"points": (Point(1, 1.0), Point(2, 1.8))})
        assert value == {"points": [{"g": 1, "speedup": 1.0},
                                    {"g": 2, "speedup": 1.8}]}


class TestRegistryResultShapes:
    @pytest.mark.parametrize("experiment", [s.experiment for s in REGRESS_SPECS])
    def test_every_spec_is_registered_consistently(self, experiment):
        spec = SPECS_BY_ID[experiment]
        assert spec.runner().__name__ == "run"
        assert canonicalize(dict(spec.kwargs)) == json.loads(
            json.dumps(dict(spec.kwargs), sort_keys=True, default=list))

    @pytest.mark.parametrize("experiment", FAST_IDS)
    def test_result_is_json_serializable(self, experiment):
        result = regenerate(SPECS_BY_ID[experiment])
        text = json.dumps(result, sort_keys=True)  # must not raise
        assert json.loads(text) == result
        assert canonicalize(result) == result  # canonical form is a fixed point

    @pytest.mark.parametrize("experiment", ("fig03", "tab02", "engine-digest"))
    def test_result_is_deterministic_across_runs(self, experiment):
        spec = SPECS_BY_ID[experiment]
        first = json.dumps(regenerate(spec), sort_keys=True)
        second = json.dumps(regenerate(spec), sort_keys=True)
        assert first == second

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "experiment",
        [s.experiment for s in REGRESS_SPECS if s.experiment not in FAST_IDS])
    def test_remaining_specs_serialize_and_canonicalize(self, experiment):
        result = regenerate(SPECS_BY_ID[experiment])
        assert canonicalize(result) == result
