"""Tests for experiment-shared helpers added alongside the runners."""

import numpy as np
import pytest

from repro.experiments.common import (
    inq_weight_provider,
    ucnn_config_for_group,
)
from repro.nn.tensor import ConvShape


class TestUcnnConfigForGroup:
    def test_g1_uses_large_u_row(self):
        config = ucnn_config_for_group(1)
        assert (config.group_size, config.vw) == (1, 8)
        assert config.l1_input_bytes == 1920

    def test_g2_uses_u17_row(self):
        config = ucnn_config_for_group(2)
        assert (config.group_size, config.vw) == (2, 4)
        assert config.l1_input_bytes == 1152

    def test_g4_uses_u3_row(self):
        config = ucnn_config_for_group(4)
        assert (config.group_size, config.vw) == (4, 2)
        assert config.l1_input_bytes == 768

    def test_throughput_preserved(self):
        for g in (1, 2, 4):
            config = ucnn_config_for_group(g)
            assert config.dense_macs_per_cycle == 8
            assert config.pe_cols * config.pe_rows == config.num_pes

    def test_unknown_g(self):
        with pytest.raises(ValueError, match="no Table II row"):
            ucnn_config_for_group(3)


class TestInqProvider:
    def test_density_and_structure(self):
        shape = ConvShape(name="x", w=6, h=6, c=16, k=8, r=3, s=3)
        provider = inq_weight_provider(density=0.9)
        weights = provider(shape)
        assert weights.shape == shape.weight_shape
        density = np.count_nonzero(weights) / weights.size
        assert abs(density - 0.9) < 0.01
        mags = np.unique(np.abs(weights[weights != 0]))
        assert np.all((mags & (mags - 1)) == 0)

    def test_deterministic_per_layer(self):
        shape = ConvShape(name="x", w=6, h=6, c=4, k=4, r=3, s=3)
        a = inq_weight_provider(density=0.9)(shape)
        b = inq_weight_provider(density=0.9)(shape)
        assert np.array_equal(a, b)

    def test_tag_changes_weights(self):
        shape = ConvShape(name="x", w=6, h=6, c=4, k=4, r=3, s=3)
        a = inq_weight_provider(density=0.9, tag="a")(shape)
        b = inq_weight_provider(density=0.9, tag="b")(shape)
        assert not np.array_equal(a, b)
