"""Tests for experiment-shared helpers added alongside the runners."""

import pickle

import numpy as np
import pytest

from repro.experiments.common import (
    inq_weight_provider,
    layer_weights,
    ucnn_config_for_group,
    uniform_weight_provider,
)
from repro.nn.tensor import ConvShape


class TestUcnnConfigForGroup:
    def test_g1_uses_large_u_row(self):
        config = ucnn_config_for_group(1)
        assert (config.group_size, config.vw) == (1, 8)
        assert config.l1_input_bytes == 1920

    def test_g2_uses_u17_row(self):
        config = ucnn_config_for_group(2)
        assert (config.group_size, config.vw) == (2, 4)
        assert config.l1_input_bytes == 1152

    def test_g4_uses_u3_row(self):
        config = ucnn_config_for_group(4)
        assert (config.group_size, config.vw) == (4, 2)
        assert config.l1_input_bytes == 768

    def test_throughput_preserved(self):
        for g in (1, 2, 4):
            config = ucnn_config_for_group(g)
            assert config.dense_macs_per_cycle == 8
            assert config.pe_cols * config.pe_rows == config.num_pes

    def test_unknown_g(self):
        with pytest.raises(ValueError, match="no Table II row"):
            ucnn_config_for_group(3)


class TestInqProvider:
    def test_density_and_structure(self):
        shape = ConvShape(name="x", w=6, h=6, c=16, k=8, r=3, s=3)
        provider = inq_weight_provider(density=0.9)
        weights = provider(shape)
        assert weights.shape == shape.weight_shape
        density = np.count_nonzero(weights) / weights.size
        assert abs(density - 0.9) < 0.01
        mags = np.unique(np.abs(weights[weights != 0]))
        assert np.all((mags & (mags - 1)) == 0)

    def test_deterministic_per_layer(self):
        shape = ConvShape(name="x", w=6, h=6, c=4, k=4, r=3, s=3)
        a = inq_weight_provider(density=0.9)(shape)
        b = inq_weight_provider(density=0.9)(shape)
        assert np.array_equal(a, b)

    def test_tag_changes_weights(self):
        shape = ConvShape(name="x", w=6, h=6, c=4, k=4, r=3, s=3)
        a = inq_weight_provider(density=0.9, tag="a")(shape)
        b = inq_weight_provider(density=0.9, tag="b")(shape)
        assert not np.array_equal(a, b)


class TestWeightMemoization:
    """Weight generation is hoisted per (provider, layer) across points."""

    SHAPE = ConvShape(name="memo", w=6, h=6, c=8, k=4, r=3, s=3)

    def test_equal_providers_share_one_tensor(self):
        a = uniform_weight_provider(17, 0.5, tag="memo")(self.SHAPE)
        b = uniform_weight_provider(17, 0.5, tag="memo")(self.SHAPE)
        assert a is b

    def test_shared_tensor_is_read_only(self):
        weights = uniform_weight_provider(17, 0.5, tag="memo")(self.SHAPE)
        with pytest.raises(ValueError):
            weights[0, 0, 0, 0] = 99

    def test_memo_matches_direct_generation(self):
        provider = uniform_weight_provider(17, 0.5, tag="memo2")
        assert np.array_equal(layer_weights(provider, self.SHAPE), provider.generate(self.SHAPE))

    def test_providers_pickle_for_worker_processes(self):
        provider = uniform_weight_provider(17, 0.5, tag="memo")
        clone = pickle.loads(pickle.dumps(provider))
        assert clone == provider
        assert np.array_equal(clone(self.SHAPE), provider(self.SHAPE))

    def test_memo_survives_a_resnet_scale_layer_scan(self):
        """Back-to-back passes over more layers than ResNet-50's 53 must
        reuse every tensor (the memo must not evict mid-pass)."""
        provider = uniform_weight_provider(5, 0.5, tag="memo-scan")
        shapes = [ConvShape(name=f"scan{i}", w=4, h=4, c=2, k=2, r=3, s=3)
                  for i in range(54)]
        first = [provider(s) for s in shapes]
        second = [provider(s) for s in shapes]
        assert all(a is b for a, b in zip(first, second))
