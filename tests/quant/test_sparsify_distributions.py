"""Tests for sparsification, synthetic generators, and weight stats."""

import numpy as np
import pytest

from repro.quant.distributions import (
    gaussian_weights,
    inq_like_weights,
    nonzero_value_palette,
    uniform_unique_weights,
)
from repro.quant.sparsify import prune_to_density, random_prune
from repro.quant.stats import (
    average_nonzero_repetition,
    filter_value_histogram,
    per_filter_unique_counts,
    unique_weights,
    weight_density,
    zero_repetition,
)


class TestPruning:
    def test_exact_density(self, rng):
        values = rng.integers(1, 10, size=1000)
        pruned = random_prune(values, 0.65, rng)
        assert np.count_nonzero(pruned) == 650

    def test_magnitude_keeps_largest(self, rng):
        values = np.arange(1, 101)
        pruned = prune_to_density(values, 0.5, rng)
        assert np.count_nonzero(pruned) == 50
        assert np.all(pruned[50:] == values[50:])
        assert np.all(pruned[:50] == 0)

    def test_magnitude_ties_broken(self, rng):
        values = np.full(100, 7)
        pruned = prune_to_density(values, 0.3, rng)
        assert np.count_nonzero(pruned) == 30

    def test_shape_preserved(self, rng):
        values = rng.integers(1, 5, size=(4, 5, 6))
        assert random_prune(values, 0.5, rng).shape == (4, 5, 6)

    def test_bad_density(self, rng):
        with pytest.raises(ValueError, match="density"):
            random_prune(np.ones(10), 1.5, rng)

    def test_survivors_unchanged(self, rng):
        values = rng.integers(-9, 10, size=500)
        pruned = random_prune(values, 0.7, rng)
        mask = pruned != 0
        assert np.all(pruned[mask] == values[mask])


class TestPalette:
    def test_count_and_distinct(self):
        for u in (2, 3, 17, 64, 256, 300):
            palette = nonzero_value_palette(u)
            assert palette.size == u - 1
            assert np.unique(palette).size == u - 1
            assert 0 not in palette

    def test_symmetricish(self):
        palette = nonzero_value_palette(17)
        assert (palette > 0).sum() >= (palette < 0).sum()

    def test_minimum(self):
        with pytest.raises(ValueError):
            nonzero_value_palette(1)


class TestUniformUniqueWeights:
    def test_u_and_density(self, rng):
        q = uniform_unique_weights((8, 4, 3, 3), 17, 0.65, rng)
        assert q.num_unique <= 17
        assert q.density == pytest.approx(0.65, abs=0.01)

    def test_full_density_no_zero(self, rng):
        q = uniform_unique_weights((1000,), 9, 1.0, rng)
        assert q.density == 1.0

    def test_values_from_palette(self, rng):
        q = uniform_unique_weights((2000,), 5, 0.9, rng)
        palette = set(nonzero_value_palette(5)) | {0}
        assert set(np.unique(q.values)).issubset(palette)

    def test_reproducible(self):
        a = uniform_unique_weights((100,), 17, 0.5, np.random.default_rng(7))
        b = uniform_unique_weights((100,), 17, 0.5, np.random.default_rng(7))
        assert np.array_equal(a.values, b.values)


class TestInqLikeWeights:
    def test_density_hit_exactly(self, rng):
        q = inq_like_weights((16, 8, 3, 3), density=0.9, rng=rng)
        assert q.density == pytest.approx(0.9, abs=0.005)

    def test_u17_structure(self, rng):
        q = inq_like_weights((32, 16, 3, 3), density=0.9, rng=rng)
        assert q.num_unique <= 17
        mags = np.unique(np.abs(q.values[q.values != 0]))
        assert np.all((mags & (mags - 1)) == 0)

    def test_natural_density_mode(self, rng):
        q = inq_like_weights((2000,), density=None, rng=rng)
        assert 0.0 < q.density <= 1.0

    def test_density_promotion(self, rng):
        """Requesting a density above INQ's natural rate promotes zeros."""
        q = inq_like_weights((5000,), density=0.99, rng=rng)
        assert q.density == pytest.approx(0.99, abs=0.005)


class TestGaussian:
    def test_shape_and_scale(self, rng):
        w = gaussian_weights((1000,), std=0.05, rng=rng)
        assert w.shape == (1000,)
        assert abs(float(np.std(w)) - 0.05) < 0.01


class TestStats:
    def test_unique_weights(self):
        assert list(unique_weights(np.array([3, 1, 3]))) == [1, 3]

    def test_weight_density(self):
        assert weight_density(np.array([0, 1, 0, 2])) == 0.5

    def test_density_empty_raises(self):
        with pytest.raises(ValueError):
            weight_density(np.array([]))

    def test_per_filter_unique_counts(self):
        weights = np.array([[[1, 1], [2, 0]], [[3, 3], [3, 3]]])
        assert list(per_filter_unique_counts(weights)) == [3, 1]

    def test_histogram_is_group_sizes(self):
        hist = filter_value_histogram(np.array([2, 2, -1, 0]))
        assert hist == {2: 2, -1: 1, 0: 1}

    def test_average_nonzero_repetition(self):
        filt = np.array([5, 5, 5, -3, 0, 0])
        assert average_nonzero_repetition(filt) == pytest.approx(2.0)

    def test_zero_repetition(self):
        assert zero_repetition(np.array([0, 1, 0])) == 2

    def test_all_zero_filter(self):
        assert average_nonzero_repetition(np.zeros(5)) == 0.0
