"""Tests for the INQ / TTQ / uniform quantizers."""

import numpy as np
import pytest

from repro.quant.inq import INQ_DEFAULT_LEVELS, inq_levels, quantize_inq
from repro.quant.ttq import quantize_ttq
from repro.quant.types import QuantizedWeights
from repro.quant.uniform import quantize_uniform


class TestQuantizedWeights:
    def test_rejects_floats(self):
        with pytest.raises(TypeError, match="integers"):
            QuantizedWeights(np.array([0.5]), 1.0, "x")

    def test_unique_and_density(self):
        q = QuantizedWeights(np.array([0, 1, 1, -2]), 0.5, "x")
        assert q.num_unique == 3
        assert q.density == pytest.approx(0.75)

    def test_dequantize(self):
        q = QuantizedWeights(np.array([2, -4]), 0.25, "x")
        assert np.allclose(q.dequantize(), [0.5, -1.0])

    def test_quantization_error(self):
        q = QuantizedWeights(np.array([1, 1]), 1.0, "x")
        assert q.quantization_error(np.array([1.0, 1.0])) == 0.0


class TestInq:
    def test_default_u17(self, rng):
        q = quantize_inq(rng.normal(0, 0.05, size=5000))
        assert q.num_unique <= 17
        assert 0 in q.unique

    def test_levels_are_pow2_integers(self, rng):
        q = quantize_inq(rng.normal(0, 0.05, size=2000))
        mags = np.unique(np.abs(q.values[q.values != 0]))
        assert np.all((mags & (mags - 1)) == 0)
        assert mags.max() <= 2 ** (INQ_DEFAULT_LEVELS // 2 - 1)

    def test_top_exponent_rule(self):
        """n1 = floor(log2(4*max/3)): values near max round up to 2^n1."""
        n1, n2 = inq_levels(1.0, 16)
        assert n1 == 0
        assert n2 == -7

    def test_largest_weight_hits_top_level(self):
        q = quantize_inq(np.array([1.0, 0.5, 0.001]))
        assert np.abs(q.values).max() == 2 ** (16 // 2 - 1)

    def test_small_weights_become_zero(self):
        q = quantize_inq(np.array([1.0, 1e-6]))
        assert q.values[1] == 0

    def test_scale_recovers_magnitudes(self):
        q = quantize_inq(np.array([1.0, -0.25]))
        real = q.dequantize()
        assert real[0] == pytest.approx(1.0, rel=0.5)
        assert real[1] < 0

    def test_all_zero_input(self):
        q = quantize_inq(np.zeros(4))
        assert q.num_unique == 1 and q.values.sum() == 0

    def test_odd_levels_rejected(self):
        with pytest.raises(ValueError, match="even"):
            inq_levels(1.0, 15)

    def test_sign_preserved(self, rng):
        w = rng.normal(0, 0.1, size=1000)
        q = quantize_inq(w)
        nonzero = q.values != 0
        assert np.all(np.sign(q.values[nonzero]) == np.sign(w[nonzero]))


class TestTtq:
    def test_ternary(self, rng):
        q = quantize_ttq(rng.normal(0, 1, size=1000))
        assert q.num_unique <= 3
        assert 0 in q.unique

    def test_asymmetric_magnitudes(self):
        w = np.concatenate([np.full(10, 1.0), np.full(10, -0.4)])
        q = quantize_ttq(w)
        pos = q.values[q.values > 0][0]
        neg = -q.values[q.values < 0][0]
        assert pos != neg

    def test_threshold_prunes(self):
        w = np.array([1.0, 0.01, -1.0])
        q = quantize_ttq(w, threshold_ratio=0.05)
        assert q.values[1] == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            quantize_ttq(np.array([1.0]), threshold_ratio=1.5)

    def test_all_zero(self):
        q = quantize_ttq(np.zeros(5))
        assert q.num_unique == 1


class TestUniform:
    def test_u_bounded(self, rng):
        q = quantize_uniform(rng.normal(0, 1, size=10000), bits=8)
        assert q.num_unique <= 256

    def test_max_maps_to_qmax(self):
        q = quantize_uniform(np.array([2.0, -2.0, 1.0]), bits=8)
        assert q.values[0] == 127 and q.values[1] == -127

    def test_asymmetric_mode(self, rng):
        q = quantize_uniform(rng.uniform(0, 1, size=100), bits=8, symmetric=False)
        assert q.num_unique <= 256

    def test_min_bits(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.array([1.0]), bits=1)

    def test_quantization_error_shrinks_with_bits(self, rng):
        w = rng.normal(0, 1, size=5000)
        e4 = quantize_uniform(w, bits=4).quantization_error(w)
        e8 = quantize_uniform(w, bits=8).quantization_error(w)
        assert e8 < e4
