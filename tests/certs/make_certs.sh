#!/bin/sh
# Regenerate the committed TLS test fixtures.
#
# These are throwaway credentials for loopback tests only -- the private
# keys are committed on purpose so tests and CI never need openssl at
# runtime. Never reuse them outside the test suite.
#
# Layout:
#   ca.pem / ca.key       test CA (trust anchor for the fleet fixtures)
#   node.pem / node.key   fleet identity signed by ca.pem
#                         (SAN: 127.0.0.1, localhost)
#   rogue-ca.pem          a *different* CA
#   rogue.pem / rogue.key identity signed by rogue-ca.pem, same SANs --
#                         used to prove wrong-CA handshakes are rejected
set -eu
cd "$(dirname "$0")"
DAYS=36500
SAN="subjectAltName=IP:127.0.0.1,DNS:localhost"

gen_ca() {  # $1 = basename, $2 = CN
  openssl req -x509 -newkey rsa:2048 -nodes -keyout "$1.key" -out "$1.pem" \
    -days "$DAYS" -subj "/CN=$2" \
    -addext "basicConstraints=critical,CA:TRUE" \
    -addext "keyUsage=critical,keyCertSign,cRLSign"
}

gen_leaf() {  # $1 = basename, $2 = CN, $3 = CA basename
  openssl req -newkey rsa:2048 -nodes -keyout "$1.key" -out "$1.csr" \
    -subj "/CN=$2" -addext "$SAN"
  openssl x509 -req -in "$1.csr" -CA "$3.pem" -CAkey "$3.key" \
    -CAcreateserial -days "$DAYS" -out "$1.pem" \
    -extfile /dev/stdin <<EXT
$SAN
keyUsage=critical,digitalSignature,keyEncipherment
extendedKeyUsage=serverAuth,clientAuth
EXT
  rm -f "$1.csr"
}

gen_ca ca "repro test CA"
gen_ca rogue-ca "repro rogue CA"
gen_leaf node repro-test-node ca
gen_leaf rogue repro-rogue-node rogue-ca
rm -f ca.srl rogue-ca.srl
