"""Sweep-level guarantees: parallel == serial, cache re-runs are fast.

These are the acceptance checks for the runtime subsystem, exercised on
the real Figure 11 experiment: a 2-worker sweep must be bit-identical to
the serial run, and a cache-warm re-run must beat the cold run by >= 5x.
"""

import time

import pytest

from repro.experiments import fig11_runtime, fig13_model_size, tab02_configs
from repro.runtime import ResultCache, Runtime, using_runtime

SMALL_DENSITIES = (0.2, 0.5, 0.8)


class TestParallelParity:
    def test_fig11_two_workers_bit_identical(self):
        serial = fig11_runtime.run(densities=SMALL_DENSITIES)
        with using_runtime(Runtime(workers=2)):
            parallel = fig11_runtime.run(densities=SMALL_DENSITIES)
        assert parallel == serial

    def test_fig13_two_workers_bit_identical(self):
        serial = fig13_model_size.run(network="lenet", densities=(0.5, 0.9))
        with using_runtime(Runtime(workers=2)):
            parallel = fig13_model_size.run(network="lenet", densities=(0.5, 0.9))
        assert parallel == serial


class TestCachedSweeps:
    def test_cached_rerun_bit_identical(self, tmp_path):
        cold_runtime = Runtime(cache=ResultCache(root=tmp_path))
        with using_runtime(cold_runtime):
            cold = fig11_runtime.run(densities=SMALL_DENSITIES)
        assert cold_runtime.total_report.misses > 0
        warm_runtime = Runtime(cache=ResultCache(root=tmp_path))
        with using_runtime(warm_runtime):
            warm = fig11_runtime.run(densities=SMALL_DENSITIES)
        assert warm == cold
        assert warm_runtime.total_report.hits == len(warm_runtime.total_report.outcomes)
        assert warm_runtime.total_report.misses == 0

    def test_cache_shared_across_experiments_and_scopes(self, tmp_path):
        """Overlapping sweeps reuse each other's points incrementally."""
        cache = ResultCache(root=tmp_path)
        with using_runtime(Runtime(cache=cache)):
            fig11_runtime.run(densities=(0.2, 0.5))
        runtime = Runtime(cache=cache)
        with using_runtime(runtime):
            fig11_runtime.run(densities=(0.2, 0.5, 0.8))
        # The two shared densities x three G values hit; only 0.8 runs.
        assert runtime.total_report.hits == 6
        assert runtime.total_report.misses == 3

    def test_bumped_code_version_misses(self, tmp_path):
        with using_runtime(Runtime(cache=ResultCache(root=tmp_path, fingerprint="v1"))):
            tab02_configs.run()
        runtime = Runtime(cache=ResultCache(root=tmp_path, fingerprint="v2"))
        with using_runtime(runtime):
            tab02_configs.run()
        assert runtime.total_report.hits == 0
        assert runtime.total_report.misses > 0

    @pytest.mark.slow
    def test_full_fig11_cached_rerun_5x_faster(self, tmp_path):
        """The ISSUE acceptance demonstration, on the full Figure 11 sweep."""
        cache_dir = tmp_path / "cache"
        with using_runtime(Runtime(cache=ResultCache(root=cache_dir))):
            t0 = time.perf_counter()
            cold = fig11_runtime.run()
            cold_seconds = time.perf_counter() - t0
        warm_runtime = Runtime(cache=ResultCache(root=cache_dir))
        with using_runtime(warm_runtime):
            t0 = time.perf_counter()
            warm = fig11_runtime.run()
            warm_seconds = time.perf_counter() - t0
        assert warm == cold
        assert warm_runtime.total_report.misses == 0
        speedup = cold_seconds / max(warm_seconds, 1e-9)
        print(f"\nfig11 cached re-run: {cold_seconds:.3f}s cold -> "
              f"{warm_seconds:.3f}s warm ({speedup:.0f}x)")
        assert speedup >= 5.0
