"""Fault injection for the tiered cache.

A subsystem that can lose its peer mid-request needs more than
happy-path parity checks.  Two instruments here:

* :class:`FlakyTier` — wraps any tier and misbehaves *below* the
  read-through layer (raises, lies, corrupts), proving ``TieredCache``
  itself contains every failure;
* a misbehaving HTTP peer — a real socket server that drops
  connections, returns 500s, truncates payloads, serves corrupt bytes,
  or hangs past the client timeout, proving ``HTTPPeerTier`` contains
  every *wire* failure.

The invariant under test throughout: whatever the remote tier does,
every lookup degrades to a recorded local miss, the sweep completes,
and the results are bit-identical to pure-local compute.  No exception
from the remote leg may ever reach a caller.
"""

import hashlib
import itertools
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.runtime import CachePeer, HTTPPeerTier, Runtime, TieredCache, WorkItem
from repro.runtime.cache import MISS
from repro.runtime.tiers import CHECKSUM_HEADER


def _point(x: int) -> dict:
    return {"arr": np.arange(x) * 3, "cube": x ** 3}


def _items(n: int = 6) -> list[WorkItem]:
    return [WorkItem(fn=_point, kwargs={"x": i}, label=f"p{i}") for i in range(n)]


def _assert_bit_identical(results: list) -> None:
    for i, value in enumerate(results):
        expected = _point(i)
        assert value["cube"] == expected["cube"]
        assert np.array_equal(value["arr"], expected["arr"])
        assert value["arr"].dtype == expected["arr"].dtype


class FlakyTier:
    """Tier wrapper that misbehaves on a per-call schedule.

    ``script`` yields one action per protocol call: ``"ok"`` delegates
    to the wrapped tier, ``"raise"`` raises ``ConnectionError``,
    ``"none"`` reports a miss/failed put, ``"corrupt"`` returns garbage
    bytes.  The schedule repeats forever.
    """

    def __init__(self, inner, script=("ok",)):
        self.inner = inner
        self._script = itertools.cycle(script)
        self._lock = threading.Lock()
        self.calls = 0

    def _next(self) -> str:
        with self._lock:
            self.calls += 1
            return next(self._script)

    def get_blob(self, key):
        action = self._next()
        if action == "raise":
            raise ConnectionError("injected: connection reset by peer")
        if action == "none":
            return None
        if action == "corrupt":
            return b"\x80\x05garbage that is not a pickle"
        return self.inner.get_blob(key)

    def put_blob(self, key, blob):
        action = self._next()
        if action == "raise":
            raise ConnectionError("injected: broken pipe")
        if action in ("none", "corrupt"):
            return False
        return self.inner.put_blob(key, blob)

    def contains(self, key):
        action = self._next()
        if action == "raise":
            raise ConnectionError("injected")
        if action in ("none", "corrupt"):
            return False
        return self.inner.contains(key)


class _MemoryTier:
    """Plain dict-backed tier (the well-behaved inner for FlakyTier)."""

    def __init__(self):
        self.blobs = {}

    def get_blob(self, key):
        return self.blobs.get(key)

    def put_blob(self, key, blob):
        self.blobs[key] = blob
        return True

    def contains(self, key):
        return key in self.blobs


class TestFlakyTier:
    @pytest.mark.parametrize("script", [
        ("raise",),
        ("none",),
        ("corrupt",),
        ("raise", "corrupt", "none"),
        ("ok", "raise", "corrupt"),
    ])
    def test_sweep_completes_bit_identically(self, tmp_path, script):
        flaky = FlakyTier(_MemoryTier(), script=script)
        cache = TieredCache(remote=flaky, root=tmp_path, fingerprint="t",
                            negative_ttl=0.0)
        runtime = Runtime(cache=cache)
        results = runtime.execute(_items())
        cache.close()
        _assert_bit_identical(results)
        assert len(runtime.last_report.outcomes) == 6

    def test_always_raising_tier_records_errors_not_exceptions(self, tmp_path):
        flaky = FlakyTier(_MemoryTier(), script=("raise",))
        cache = TieredCache(remote=flaky, root=tmp_path, fingerprint="t")
        key = cache.key_for(_point, {"x": 1})
        assert cache.get(key) is MISS
        cache.put(key, _point(1))
        cache.drain()
        stats = cache.tier_stats()
        assert stats["remote_errors"] == 1  # the raising get
        assert stats["remote_misses"] == 0  # ... counted ONCE, not as a miss too
        assert stats["push_failures"] == 1  # the raising put
        assert cache.get(key)["cube"] == 1  # local path unaffected
        cache.close()

    def test_corrupt_blob_is_rejected_then_recomputed(self, tmp_path):
        flaky = FlakyTier(_MemoryTier(), script=("corrupt",))
        cache = TieredCache(remote=flaky, root=tmp_path, fingerprint="t")
        runtime = Runtime(cache=cache)
        value = runtime.submit(_point, x=3)
        cache.close()
        assert value["cube"] == 27
        assert cache.tier_stats()["remote_errors"] >= 1
        assert runtime.last_report.misses == 1  # recomputed, never trusted


# ---------------------------------------------------------------------------
# Misbehaving wire peer
# ---------------------------------------------------------------------------


class _MisbehavingHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def _serve(self) -> None:
        mode = self.server.mode
        if mode == "drop":
            # Hang up without writing a single byte of response.
            self.connection.close()
            return
        if mode == "hang":
            time.sleep(self.server.hang_seconds)
            # The client gave up long ago; writing to the dead socket
            # raises BrokenPipeError, which is exactly the point.
            import contextlib

            with contextlib.suppress(OSError):
                self.send_error(504)
            self.close_connection = True
            return
        if mode == "500":
            self.send_response(500)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        key = self.path.rsplit("/", 1)[-1]
        blob = self.server.blobs.get(key)
        if blob is None:
            self.send_response(404)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        if mode in ("truncate", "truncate_bare"):
            # Advertise the full length, send half, hang up: the client's
            # read returns short, caught by its Content-Length comparison
            # (read(amt) returns the short body rather than raising).
            # "truncate_bare" omits the checksum header, so the length
            # check is the ONLY thing standing between the short body
            # and the unpickler.
            self.send_response(200)
            self.send_header("Content-Length", str(len(blob)))
            if mode == "truncate":
                self.send_header(CHECKSUM_HEADER, hashlib.sha256(blob).hexdigest())
            self.end_headers()
            self.wfile.write(blob[: len(blob) // 2])
            self.wfile.flush()
            self.connection.close()
            return
        if mode == "corrupt":
            # Full-length body of garbage under the true checksum: only
            # the checksum comparison can catch this.
            body = bytes(b ^ 0xFF for b in blob)
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.send_header(CHECKSUM_HEADER, hashlib.sha256(blob).hexdigest())
            self.end_headers()
            self.wfile.write(body)
            return
        if mode == "badpickle":
            # Internally consistent (checksum matches) but not a pickle:
            # passes the wire layer, must die in TieredCache's decode.
            body = b"not a pickle at all"
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.send_header(CHECKSUM_HEADER, hashlib.sha256(body).hexdigest())
            self.end_headers()
            self.wfile.write(body)
            return
        self.send_response(200)
        self.send_header("Content-Length", str(len(blob)))
        self.send_header(CHECKSUM_HEADER, hashlib.sha256(blob).hexdigest())
        self.end_headers()
        self.wfile.write(blob)

    do_GET = _serve
    do_HEAD = _serve
    do_PUT = _serve

    def log_message(self, format, *args):  # noqa: A002
        pass


class MisbehavingPeer:
    """An HTTP cache peer with a switchable failure mode."""

    def __init__(self, hang_seconds: float = 1.0):
        self._server = ThreadingHTTPServer(("127.0.0.1", 0), _MisbehavingHandler)
        self._server.mode = "ok"
        self._server.blobs = {}
        self._server.hang_seconds = hang_seconds
        self.url = f"http://127.0.0.1:{self._server.server_address[1]}"
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.05}, daemon=True)

    @property
    def blobs(self):
        return self._server.blobs

    def set_mode(self, mode: str) -> None:
        self._server.mode = mode

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()


@pytest.fixture
def misbehaving():
    with MisbehavingPeer(hang_seconds=1.0) as peer:
        yield peer


def _seeded_blobs(tmp_path) -> dict:
    """The on-disk blobs of a fully computed cache, keyed for reuse."""
    seed = TieredCache(remote=_MemoryTier(), root=tmp_path / "seed", fingerprint="t")
    Runtime(cache=seed).execute(_items())
    seed.close()
    return {key: seed.get_blob(key) for key in seed.iter_keys()}


class TestMisbehavingPeer:
    @pytest.mark.parametrize("mode", ["drop", "500", "truncate", "truncate_bare",
                                      "corrupt", "badpickle", "hang"])
    def test_every_wire_failure_degrades_to_local_compute(self, tmp_path, misbehaving, mode):
        misbehaving.blobs.update(_seeded_blobs(tmp_path))
        misbehaving.set_mode(mode)
        cache = TieredCache(remote=HTTPPeerTier(misbehaving.url, timeout=0.25),
                            root=tmp_path / "node", fingerprint="t")
        runtime = Runtime(cache=cache)
        results = runtime.execute(_items())
        cache.close()
        _assert_bit_identical(results)
        # Nothing was trusted from the sick peer: every point ran locally
        # (the breaker may have skipped some calls entirely).
        assert runtime.last_report.misses == 6
        stats = cache.tier_stats()
        assert stats["remote_hits"] == 0
        assert stats["remote_errors"] + stats["remote_misses"] == 6

    def test_healthy_mode_control(self, tmp_path, misbehaving):
        """The fixture itself serves correctly in 'ok' mode (control arm)."""
        misbehaving.blobs.update(_seeded_blobs(tmp_path))
        cache = TieredCache(remote=HTTPPeerTier(misbehaving.url, timeout=2.0),
                            root=tmp_path / "node", fingerprint="t")
        runtime = Runtime(cache=cache)
        results = runtime.execute(_items())
        cache.close()
        _assert_bit_identical(results)
        assert runtime.last_report.misses == 0
        assert cache.tier_stats()["remote_hits"] == 6

    def test_hang_respects_client_timeout(self, tmp_path, misbehaving):
        """A hanging peer costs at most ~timeout per admitted call."""
        from repro.runtime import TierUnavailable

        misbehaving.blobs.update(_seeded_blobs(tmp_path))
        misbehaving.set_mode("hang")
        tier = HTTPPeerTier(misbehaving.url, timeout=0.2, failure_threshold=100)
        started = time.perf_counter()
        with pytest.raises(TierUnavailable):
            tier.get_blob("0" * 64)
        elapsed = time.perf_counter() - started
        assert elapsed < 0.9  # bounded by the timeout, not the 1s hang

    def test_breaker_opens_and_skips(self, tmp_path, misbehaving):
        from repro.runtime import TierUnavailable

        misbehaving.set_mode("500")
        tier = HTTPPeerTier(misbehaving.url, timeout=0.5,
                            failure_threshold=3, cooldown=30.0)
        for _ in range(5):
            with pytest.raises(TierUnavailable):
                tier.get_blob("1" * 64)
        stats = tier.stats()
        assert stats["breaker_open"]
        assert stats["errors"] == 3  # threshold trips after 3 real calls
        assert stats["skipped"] == 2  # the rest never touched the wire

    def test_breaker_closes_after_cooldown(self, tmp_path, misbehaving):
        from repro.runtime import TierUnavailable

        key, blob = next(iter(_seeded_blobs(tmp_path).items()))
        misbehaving.blobs[key] = blob
        misbehaving.set_mode("500")
        tier = HTTPPeerTier(misbehaving.url, timeout=0.5,
                            failure_threshold=2, cooldown=0.1)
        for _ in range(3):
            with pytest.raises(TierUnavailable):
                tier.get_blob(key)
        assert tier.stats()["breaker_open"]
        misbehaving.set_mode("ok")  # peer recovers
        time.sleep(0.15)
        assert tier.get_blob(key) == blob
        assert not tier.stats()["breaker_open"]

    def test_transient_failure_is_not_negative_memoized(self, tmp_path, misbehaving):
        """A key the peer HAS must be fetched once the peer recovers —
        a blip must not poison the key for negative_ttl seconds."""
        blobs = _seeded_blobs(tmp_path)
        misbehaving.blobs.update(blobs)
        misbehaving.set_mode("500")  # the blip
        cache = TieredCache(
            remote=HTTPPeerTier(misbehaving.url, timeout=0.5,
                                failure_threshold=2, cooldown=0.05),
            root=tmp_path / "node", fingerprint="t", negative_ttl=300.0)
        key = next(iter(blobs))
        assert cache.get(key) is MISS  # error: counted, NOT memoized
        assert cache.tier_stats()["remote_errors"] == 1
        assert cache.tier_stats()["remote_misses"] == 0
        misbehaving.set_mode("ok")  # peer recovers
        time.sleep(0.1)  # let the breaker cooldown lapse
        value = cache.get(key)  # retried immediately despite negative_ttl=300
        assert value is not MISS
        assert cache.tier_stats()["remote_hits"] == 1
        cache.close()


class TestPeerDeathMidSweep:
    """The acceptance scenario's second half: kill the peer mid-sweep."""

    def test_sweep_completes_after_peer_dies(self, tmp_path):
        items = _items(8)
        peer = CachePeer(root=tmp_path / "peer")
        peer.start()
        # Machine A computes everything and seeds the peer.
        cache_a = TieredCache(remote=peer.url, root=tmp_path / "a", fingerprint="t")
        Runtime(cache=cache_a).execute(items)
        cache_a.close()

        # Machine B starts its sweep against the live peer; after the
        # first peer-served point lands, the peer is killed mid-sweep.
        cache_b = TieredCache(
            remote=HTTPPeerTier(peer.url, timeout=0.25, cooldown=0.05),
            root=tmp_path / "b", fingerprint="t")
        seen = []

        def kill_after_first_hit(event: str, label: str) -> None:
            seen.append((event, label))
            if event == "hit" and peer._thread is not None:
                peer.stop()  # the peer dies mid-sweep

        runtime_b = Runtime(cache=cache_b, progress=kill_after_first_hit)
        results = runtime_b.execute(items)
        cache_b.close()

        # The sweep completed, with correct (bit-identical) results: the
        # first point came from the peer, the rest were computed locally
        # once the peer vanished.
        _assert_bit_identical(results)
        stats = cache_b.tier_stats()
        assert stats["remote_hits"] >= 1
        assert runtime_b.last_report.misses >= 1
        assert runtime_b.last_report.hits + runtime_b.last_report.misses == 8

    def test_node_restart_after_peer_death_serves_locally(self, tmp_path):
        """Promoted entries outlive the peer: local warmth is durable."""
        with CachePeer(root=tmp_path / "peer") as peer:
            url = peer.url
            cache_a = TieredCache(remote=url, root=tmp_path / "a", fingerprint="t")
            key = cache_a.key_for(_point, {"x": 5})
            cache_a.put(key, _point(5))
            cache_a.close()
            cache_b = TieredCache(remote=url, root=tmp_path / "b", fingerprint="t")
            assert cache_b.get(key)["cube"] == 125  # peer hit + promotion
            cache_b.drain()
            cache_b.close()
        # Peer gone; a fresh TieredCache on B's directory still hits.
        revived = TieredCache(remote=HTTPPeerTier(url, timeout=0.2),
                              root=tmp_path / "b", fingerprint="t")
        assert revived.get(key)["cube"] == 125
        assert revived.tier_stats()["remote_hits"] == 0  # purely local
        revived.close()
