"""Tests for the content-addressed result cache."""

import numpy as np
import pytest

from repro.arch.config import ucnn_config
from repro.experiments.common import uniform_weight_provider
from repro.nn.tensor import ConvShape
from repro.runtime import ResultCache, cache_key, canonicalize, code_fingerprint
from repro.runtime.cache import MISS


def _point(x: int) -> int:
    return x * 2


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize("a") == "a"
        assert canonicalize(None) is None
        assert canonicalize(0.5) == 0.5

    def test_dataclass_keeps_identity_and_fields(self):
        shape = ConvShape(name="x", w=4, h=4, c=2, k=2, r=3, s=3, padding=1)
        out = canonicalize(shape)
        assert out["__dataclass__"].endswith("ConvShape")
        assert out["c"] == 2

    def test_distinct_dataclasses_differ(self):
        a = ConvShape(name="x", w=4, h=4, c=2, k=2, r=3, s=3, padding=1)
        b = ConvShape(name="x", w=4, h=4, c=2, k=4, r=3, s=3, padding=1)
        assert canonicalize(a) != canonicalize(b)

    def test_config_with_enum_kind(self):
        out = canonicalize(ucnn_config(17, 16))
        assert out["kind"]["__enum__"].endswith("DesignKind")

    def test_ndarray_hashes_content(self):
        a = canonicalize(np.arange(6).reshape(2, 3))
        b = canonicalize(np.arange(6).reshape(2, 3))
        c = canonicalize(np.arange(1, 7).reshape(2, 3))
        assert a == b
        assert a != c
        assert a["shape"] == [2, 3]

    def test_provider_dataclass_canonicalizes(self):
        out = canonicalize(uniform_weight_provider(17, 0.5, tag="t"))
        assert out["num_unique"] == 17

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_mapping_key_types_do_not_alias(self):
        assert canonicalize({1: "v"}) != canonicalize({"1": "v"})

    def test_mapping_order_is_canonical(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(_point, {"x": 1}) == cache_key(_point, {"x": 1})

    def test_kwargs_change_key(self):
        assert cache_key(_point, {"x": 1}) != cache_key(_point, {"x": 2})

    def test_function_identity_changes_key(self):
        assert cache_key(_point, {"x": 1}) != cache_key(code_fingerprint, {"x": 1})

    def test_code_version_changes_key(self):
        baseline = cache_key(_point, {"x": 1})
        bumped = cache_key(_point, {"x": 1}, fingerprint="v2")
        assert baseline != bumped


class TestResultCache:
    def test_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.key_for(_point, {"x": 1})
        value = {"arr": np.arange(5), "n": 3}
        cache.put(key, value)
        loaded = cache.get(key)
        assert loaded["n"] == 3
        assert np.array_equal(loaded["arr"], value["arr"])
        assert loaded["arr"].dtype == value["arr"].dtype

    def test_absent_key_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get("0" * 64) is MISS

    def test_none_is_a_valid_cached_value(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("a" * 64, None)
        assert cache.get("a" * 64) is None

    def test_corrupt_entry_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = "b" * 64
        cache.put(key, 1)
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is MISS

    def test_bumped_fingerprint_misses(self, tmp_path):
        v1 = ResultCache(root=tmp_path, fingerprint="v1")
        v2 = ResultCache(root=tmp_path, fingerprint="v2")
        key1 = v1.key_for(_point, {"x": 1})
        v1.put(key1, 2)
        assert v1.get(key1) == 2
        key2 = v2.key_for(_point, {"x": 1})
        assert key2 != key1
        assert v2.get(key2) is MISS

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        assert cache.stats().entries == 0
        cache.put("c" * 64, [1, 2, 3])
        cache.put("d" * 64, "x")
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_clear_spares_unrelated_files(self, tmp_path):
        """A user-supplied --cache-dir may hold non-cache files."""
        cache = ResultCache(root=tmp_path)
        cache.put("e" * 64, 1)
        notebook = tmp_path / "notes.txt"
        notebook.write_text("keep me")
        assert cache.clear() == 1
        assert notebook.read_text() == "keep me"

    def test_clear_reclaims_orphaned_tmp_files(self, tmp_path):
        """Interrupted put() leaves .tmp files; clear sweeps them too."""
        cache = ResultCache(root=tmp_path)
        key = "f" * 64
        cache.put(key, 1)
        orphan = cache.path_for(key).with_suffix(".tmp12345")
        orphan.write_bytes(b"partial write")
        assert cache.stats().bytes > cache.path_for(key).stat().st_size
        assert cache.clear() == 1
        assert not orphan.exists()
        assert cache.stats().bytes == 0
