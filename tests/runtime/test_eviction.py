"""Tests for cache eviction (LRU byte budget) and entry metadata."""

import os
import pickle
import threading

import pytest

from repro.runtime import ResultCache, Runtime, TieredCache, WorkItem
from repro.runtime.cache import MISS, CacheEntry


def _square(x: int) -> int:
    return x * x


def _age(cache: ResultCache, key: str, seconds_ago: float) -> None:
    """Backdate an entry's mtime (deterministic LRU ordering in tests)."""
    path = cache.path_for(key)
    stamp = path.stat().st_mtime - seconds_ago
    os.utime(path, (stamp, stamp))


class TestEviction:
    def test_budget_respected_after_evict(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        payload = b"x" * 1000
        for i in range(10):
            cache.put(f"{i:064d}", payload)
        total = cache.stats().bytes
        assert total > 5000
        cache.evict(max_bytes=total // 2)
        assert cache.stats().bytes <= total // 2
        assert cache.stats().entries < 10

    def test_least_recently_used_goes_first(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        old, fresh = "a" * 64, "b" * 64
        cache.put(old, b"x" * 500)
        cache.put(fresh, b"x" * 500)
        _age(cache, old, seconds_ago=100)
        entry_size = cache.path_for(fresh).stat().st_size
        cache.evict(max_bytes=entry_size)
        assert cache.get(old) is MISS
        assert cache.get(fresh) == b"x" * 500

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        first, second = "c" * 64, "d" * 64
        cache.put(first, 1)
        cache.put(second, 2)
        _age(cache, first, seconds_ago=100)
        _age(cache, second, seconds_ago=100)
        assert cache.get(first) == 1  # touch: now the most recent
        entry_size = cache.path_for(first).stat().st_size
        cache.evict(max_bytes=entry_size)
        assert cache.get(first) == 1
        assert cache.get(second) is MISS

    def test_no_budget_means_no_eviction(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("e" * 64, 1)
        assert cache.evict() == 0
        assert cache.stats().entries == 1

    def test_put_auto_sweeps_with_budget(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=1200, sweep_every=1)
        for i in range(6):
            cache.put(f"{i:064d}", b"y" * 400)
        # Sweeping after every put keeps the directory at the budget.
        assert cache.stats().bytes <= 1200
        assert 1 <= cache.stats().entries < 6

    def test_sweep_every_batches_eviction(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=1, sweep_every=4)
        for i in range(3):
            cache.put(f"{i:064d}", b"z" * 100)
        assert cache.stats().entries == 3  # under the sweep interval
        cache.put("3".rjust(64, "0"), b"z" * 100)  # 4th put triggers it
        assert cache.stats().entries == 0

    def test_evict_sweeps_stale_tmp_files_only(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = "f" * 64
        cache.put(key, 1)
        stale = cache.path_for(key).with_suffix(".tmp999")
        stale.write_bytes(b"abandoned write")
        old = stale.stat().st_mtime - 3600
        os.utime(stale, (old, old))
        fresh = cache.path_for(key).with_suffix(".tmp998")
        fresh.write_bytes(b"concurrent writer mid-put")
        cache.evict(max_bytes=10**9)  # large budget: no entry evicted
        assert not stale.exists()
        assert fresh.exists()  # may be a live writer: spared
        assert cache.get(key) == 1


class TestPutEvictRace:
    """Regression: concurrent put + evict must never leave temp litter.

    A failed or interrupted ``put`` used to leave its ``.tmp*`` file
    behind until the stale-file sweep (5 minutes later); under a
    put/evict race that litter both inflated ``stats()`` and risked
    being mistaken for a live write.  ``put_blob`` now unlinks its temp
    file on any failure, so the only ``.tmp*`` files ever on disk
    belong to writes in flight *right now*.
    """

    def test_failed_put_leaves_no_tmp_file(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        with pytest.raises(Exception):  # unpicklable value  # noqa: B017
            cache.put("a" * 64, lambda: 1)
        assert list(tmp_path.rglob("*.tmp*")) == []
        assert cache.stats().entries == 0

    def test_failed_write_leaves_no_tmp_file(self, tmp_path):
        """An OS-level write failure (here: injected) also self-cleans."""
        cache = ResultCache(root=tmp_path)
        original = os.replace

        def exploding_replace(src, dst):
            raise OSError("injected: disk full")

        os.replace = exploding_replace
        try:
            with pytest.raises(OSError, match="disk full"):
                cache.put("b" * 64, 123)
        finally:
            os.replace = original
        assert list(tmp_path.rglob("*.tmp*")) == []

    def test_threaded_put_evict_hammer(self, tmp_path):
        """Writers and evictors hammer the same keys; no litter survives."""
        cache = ResultCache(root=tmp_path)
        keys = [f"{i:064d}" for i in range(8)]
        errors = []
        stop = threading.Event()

        def writer(seed: int) -> None:
            try:
                for i in range(120):
                    cache.put(keys[(seed + i) % len(keys)], b"x" * 256)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def evictor() -> None:
            try:
                while not stop.is_set():
                    cache.evict(max_bytes=0)  # evict everything, repeatedly
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(s,)) for s in range(4)]
        evictors = [threading.Thread(target=evictor) for _ in range(2)]
        for t in evictors + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in evictors:
            t.join()
        assert errors == []
        # No dangling temp file, whatever interleaving happened ...
        assert list(tmp_path.rglob("*.tmp*")) == []
        # ... and every surviving entry is intact (readable, right value).
        for key in keys:
            value = cache.get(key)
            assert value is MISS or value == b"x" * 256

    def test_tiered_writeback_put_evict_hammer(self, tmp_path):
        """Same hammer through TieredCache's async write-back path."""

        class NullTier:
            def get_blob(self, key):
                return None

            def put_blob(self, key, blob):
                return True

            def contains(self, key):
                return False

        cache = TieredCache(remote=NullTier(), root=tmp_path, fingerprint="t",
                            negative_ttl=0.0)
        keys = [f"{i:064d}" for i in range(6)]
        stop = threading.Event()
        errors = []

        def writer(seed: int) -> None:
            try:
                for i in range(60):
                    key = keys[(seed + i) % len(keys)]
                    cache.put(key, b"y" * 128)
                    cache.get(key)  # may race the evictor: MISS is fine
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def evictor() -> None:
            try:
                while not stop.is_set():
                    cache.evict(max_bytes=0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
        sweeper = threading.Thread(target=evictor)
        sweeper.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache.close()  # drains pending promotions/pushes
        stop.set()
        sweeper.join()
        assert errors == []
        assert list(tmp_path.rglob("*.tmp*")) == []


class TestEntryMetadata:
    def test_runtime_put_records_fn_and_label(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runtime = Runtime(cache=cache)
        runtime.execute([WorkItem(fn=_square, kwargs={"x": 3}, label="sq:3")])
        key = cache.key_for(_square, {"x": 3})
        entry = cache.get_entry(key)
        assert isinstance(entry, CacheEntry)
        assert entry.value == 9
        assert entry.fn.endswith("test_eviction._square")
        assert entry.label == "sq:3"

    def test_breakdown_groups_by_function(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runtime = Runtime(cache=cache)
        runtime.execute([WorkItem(fn=_square, kwargs={"x": i}) for i in range(3)])
        groups = cache.breakdown()
        assert len(groups) == 1
        assert groups[0].fn.endswith("test_eviction._square")
        assert groups[0].entries == 3
        assert groups[0].bytes == cache.stats().bytes

    def test_pre_wrapper_entries_still_readable(self, tmp_path):
        """Raw pickles (written before CacheEntry existed) keep working."""
        cache = ResultCache(root=tmp_path)
        key = "9" * 64
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"legacy": True}))
        assert cache.get(key) == {"legacy": True}
        entry = cache.get_entry(key)
        assert isinstance(entry, CacheEntry) and entry.fn == ""
        groups = cache.breakdown()
        assert groups[0].fn == "(unknown)"
