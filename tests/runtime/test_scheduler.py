"""Tests for the design-point scheduler."""

import pytest

from repro.runtime import (
    ResultCache,
    Runtime,
    WorkItem,
    configure,
    execute,
    get_runtime,
    set_runtime,
    using_runtime,
)


def _square(x: int) -> int:
    return x * x


def _record_pid(x: int) -> tuple[int, int]:
    import os

    return x, os.getpid()


class TestSerialExecution:
    def test_results_in_item_order(self):
        runtime = Runtime()
        items = [WorkItem(fn=_square, kwargs={"x": i}) for i in (3, 1, 2)]
        assert runtime.execute(items) == [9, 1, 4]

    def test_report_counts_misses(self):
        runtime = Runtime()
        runtime.execute([WorkItem(fn=_square, kwargs={"x": 1})])
        assert runtime.last_report.misses == 1
        assert runtime.last_report.hits == 0

    def test_submit_single(self):
        assert Runtime().submit(_square, x=4) == 16

    def test_progress_events(self):
        events = []
        runtime = Runtime(progress=lambda e, label: events.append((e, label)))
        runtime.execute([WorkItem(fn=_square, kwargs={"x": 2}, label="p")])
        assert ("start", "p") in events and ("done", "p") in events


class TestCachedExecution:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        items = [WorkItem(fn=_square, kwargs={"x": i}) for i in range(4)]
        first = Runtime(cache=cache).execute(items)
        runtime = Runtime(cache=cache)
        second = runtime.execute(items)
        assert first == second == [0, 1, 4, 9]
        assert runtime.last_report.hits == 4
        assert runtime.last_report.misses == 0

    def test_partial_overlap_is_incremental(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        Runtime(cache=cache).execute([WorkItem(fn=_square, kwargs={"x": 1})])
        runtime = Runtime(cache=cache)
        values = runtime.execute(
            [WorkItem(fn=_square, kwargs={"x": i}) for i in (1, 5)])
        assert values == [1, 25]
        assert runtime.last_report.hits == 1
        assert runtime.last_report.misses == 1

    def test_hit_emits_progress(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        Runtime(cache=cache).execute([WorkItem(fn=_square, kwargs={"x": 1}, label="p")])
        events = []
        Runtime(cache=cache, progress=lambda e, label: events.append(e)).execute(
            [WorkItem(fn=_square, kwargs={"x": 1}, label="p")])
        assert events == ["hit"]


class TestParallelExecution:
    def test_pool_matches_serial(self):
        items = [WorkItem(fn=_square, kwargs={"x": i}) for i in range(8)]
        assert Runtime(workers=2).execute(items) == Runtime().execute(items)

    def test_pool_uses_other_processes(self):
        import os

        items = [WorkItem(fn=_record_pid, kwargs={"x": i}) for i in range(8)]
        values = Runtime(workers=2).execute(items)
        assert [x for x, __ in values] == list(range(8))
        assert any(pid != os.getpid() for __, pid in values)

    def test_pool_with_cache_writes_back(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        items = [WorkItem(fn=_square, kwargs={"x": i}) for i in range(4)]
        Runtime(workers=2, cache=cache).execute(items)
        runtime = Runtime(cache=cache)
        assert runtime.execute(items) == [0, 1, 4, 9]
        assert runtime.last_report.hits == 4


class TestGlobalRuntime:
    def test_default_is_serial_uncached(self):
        runtime = get_runtime()
        assert runtime.workers in (0, 1)
        assert runtime.cache is None

    def test_execute_routes_through_global(self):
        assert execute([WorkItem(fn=_square, kwargs={"x": 3})]) == [9]

    def test_using_runtime_restores(self):
        before = get_runtime()
        with using_runtime(Runtime(workers=2)) as inner:
            assert get_runtime() is inner
        assert get_runtime() is before

    def test_using_runtime_restores_on_error(self):
        before = get_runtime()
        with pytest.raises(RuntimeError):
            with using_runtime(Runtime()):
                raise RuntimeError("boom")
        assert get_runtime() is before

    def test_configure_and_set(self):
        before = get_runtime()
        try:
            installed = configure(workers=3)
            assert get_runtime() is installed
            assert installed.workers == 3
        finally:
            set_runtime(before)
