"""Property tests for cache-key canonicalization.

The cross-machine cache only works if two machines derive the *same*
key for the same design point and *different* keys for different ones —
independently of dict insertion order, of Python's per-process hash
randomization, and of which process computes the key.  Hypothesis
drives the structural invariants; a subprocess (with a different
``PYTHONHASHSEED``) pins the cross-process guarantee the HTTP peer
relies on.
"""

import copy
import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import cache_key, canonicalize

# JSON-expressible kwargs values, nested a few levels deep — the shapes
# experiment runners and serve endpoints actually pass.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.dictionaries(st.integers(min_value=-99, max_value=99), children, max_size=4),
    ),
    max_leaves=12,
)
_kwargs = st.dictionaries(st.text(min_size=1, max_size=10), _values, max_size=5)


def _fn(**kwargs):
    """Stand-in point function (only its identity enters the key)."""


class TestCanonicalizeProperties:
    @given(_kwargs)
    @settings(max_examples=60, deadline=None)
    def test_kwarg_order_is_irrelevant(self, kwargs):
        shuffled = dict(reversed(list(kwargs.items())))
        assert cache_key(_fn, kwargs, fingerprint="t") == \
            cache_key(_fn, shuffled, fingerprint="t")

    @given(_values)
    @settings(max_examples=60, deadline=None)
    def test_nested_structures_are_stable(self, value):
        """Same structure, fresh objects -> same canonical form and key."""
        clone = copy.deepcopy(value)
        assert canonicalize(value) == canonicalize(clone)
        assert cache_key(_fn, {"v": value}, fingerprint="t") == \
            cache_key(_fn, {"v": clone}, fingerprint="t")

    @given(_values)
    @settings(max_examples=60, deadline=None)
    def test_canonical_form_is_json_serializable(self, value):
        """The form must survive json.dumps — that IS the key payload."""
        text = json.dumps(canonicalize(value), sort_keys=True)
        assert isinstance(text, str)

    @given(_values)
    @settings(max_examples=60, deadline=None)
    def test_tuple_and_list_alias_by_design(self, value):
        """Sequences canonicalize identically (JSON has one list type)."""
        assert cache_key(_fn, {"v": [value]}, fingerprint="t") == \
            cache_key(_fn, {"v": (value,)}, fingerprint="t")

    @given(st.integers(min_value=-(2 ** 53), max_value=2 ** 53))
    @settings(max_examples=60, deadline=None)
    def test_float_and_int_never_alias(self, n):
        """1 and 1.0 are distinct design points (different dtypes downstream)."""
        assert cache_key(_fn, {"x": n}, fingerprint="t") != \
            cache_key(_fn, {"x": float(n)}, fingerprint="t")

    def test_bool_and_int_never_alias(self):
        assert cache_key(_fn, {"x": True}, fingerprint="t") != \
            cache_key(_fn, {"x": 1}, fingerprint="t")
        assert cache_key(_fn, {"x": False}, fingerprint="t") != \
            cache_key(_fn, {"x": 0}, fingerprint="t")

    @given(st.dictionaries(st.integers(min_value=-99, max_value=99),
                           _scalars, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_mapping_key_types_never_alias(self, mapping):
        """{1: v} and {"1": v} stay distinct even nested in kwargs."""
        stringly = {str(k): v for k, v in mapping.items()}
        assert cache_key(_fn, {"m": mapping}, fingerprint="t") != \
            cache_key(_fn, {"m": stringly}, fingerprint="t")

    @given(st.sets(st.integers(min_value=-999, max_value=999), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_set_iteration_order_is_irrelevant(self, values):
        """Sets canonicalize by sorted content, not iteration order."""
        as_frozen = frozenset(values)
        assert cache_key(_fn, {"s": values}, fingerprint="t") == \
            cache_key(_fn, {"s": as_frozen}, fingerprint="t")


class TestCrossProcessStability:
    """The property the cross-machine cache stands on."""

    # A nasty-but-JSON-able kwargs fixture: nested dicts (insertion
    # order scrambled), mixed key types, floats needing repr fidelity.
    KWARGS_SRC = ("{'b': 1, 'a': {'z': [1, 2.5, 'x'], 'y': (3, True)}, "
                  "'m': {3: 'three', '3': 'still-three'}, "
                  "'f': 0.1234567890123456789}")

    def _child_key(self, hash_seed: str) -> str:
        program = (
            "from repro.serve.endpoints import runtime_point\n"
            "from repro.runtime import cache_key\n"
            f"kwargs = {self.KWARGS_SRC}\n"
            "print(cache_key(runtime_point, kwargs, fingerprint='pinned'))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run([sys.executable, "-c", program], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()

    def test_key_is_identical_across_process_boundaries(self):
        from repro.serve.endpoints import runtime_point

        kwargs = eval(self.KWARGS_SRC)  # noqa: S307 (test fixture literal)
        here = cache_key(runtime_point, kwargs, fingerprint="pinned")
        # Two children with *different* hash randomization: dict/set hash
        # order differs from this process and from each other, yet the
        # canonical key must not.
        assert self._child_key("1") == here
        assert self._child_key("424242") == here
