"""Tests for the tiered cache: read-through, promotion, peer sharing.

The happy-path half of the tier story (the fault half lives in
``test_tiers_faults.py``): local hits stay local, remote hits promote,
negative lookups memoize, concurrent fetches single-flight, and two
"machines" (distinct cache directories) sharing one peer reuse each
other's design points bit-identically.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.runtime import (
    CachePeer,
    HTTPPeerTier,
    LocalTier,
    ResultCache,
    Runtime,
    TieredCache,
    WorkItem,
    pull_all,
    push_all,
)
from repro.runtime.cache import MISS, CacheEntry


def _point(x: int) -> dict:
    return {"arr": np.arange(x), "sq": x * x}


def _entry_blob(value: object) -> bytes:
    return pickle.dumps(CacheEntry(value=value), protocol=pickle.HIGHEST_PROTOCOL)


class RecordingTier:
    """In-memory tier that counts every protocol call."""

    def __init__(self, blobs: dict | None = None, delay: float = 0.0):
        self.blobs = dict(blobs or {})
        self.delay = delay
        self.calls = {"get": 0, "put": 0, "contains": 0}
        self._lock = threading.Lock()

    def get_blob(self, key):
        with self._lock:
            self.calls["get"] += 1
        if self.delay:
            import time

            time.sleep(self.delay)
        return self.blobs.get(key)

    def put_blob(self, key, blob):
        with self._lock:
            self.calls["put"] += 1
            self.blobs[key] = blob
        return True

    def contains(self, key):
        with self._lock:
            self.calls["contains"] += 1
        return key in self.blobs


@pytest.fixture
def peer(tmp_path):
    with CachePeer(root=tmp_path / "peer") as running:
        yield running


class TestLocalTier:
    def test_blob_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        tier = LocalTier(cache)
        assert tier.get_blob("a" * 64) is None
        assert not tier.contains("a" * 64)
        assert tier.put_blob("a" * 64, _entry_blob(7))
        assert tier.contains("a" * 64)
        assert tier.get_blob("a" * 64) == _entry_blob(7)
        assert cache.get("a" * 64) == 7  # same bytes the cache reads

    def test_blob_is_the_on_disk_representation(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("b" * 64, {"v": 1}, fn="f", label="l")
        blob = LocalTier(cache).get_blob("b" * 64)
        entry = pickle.loads(blob)
        assert entry.value == {"v": 1} and entry.fn == "f" and entry.label == "l"


class TestTieredReadPath:
    def test_local_hit_never_touches_remote(self, tmp_path):
        remote = RecordingTier()
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        cache.put("a" * 64, 42)
        cache.drain()
        remote.calls["put"] = 0  # ignore the push
        assert cache.get("a" * 64) == 42
        assert remote.calls["get"] == 0

    def test_remote_hit_returns_and_promotes(self, tmp_path):
        key = "c" * 64
        remote = RecordingTier({key: _entry_blob({"v": 9})})
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        assert cache.get(key) == {"v": 9}
        cache.drain()
        assert cache.contains(key)  # promoted to local disk
        assert cache.get(key) == {"v": 9}
        assert remote.calls["get"] == 1  # second read was local
        stats = cache.tier_stats()
        assert stats["remote_hits"] == 1 and stats["promotions"] == 1
        cache.close()

    def test_raw_legacy_blob_promotes_too(self, tmp_path):
        """A peer may hold pre-CacheEntry pickles; they still read."""
        key = "d" * 64
        remote = RecordingTier({key: pickle.dumps([1, 2, 3])})
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        assert cache.get(key) == [1, 2, 3]
        cache.close()

    def test_negative_lookup_is_memoized(self, tmp_path):
        remote = RecordingTier()
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        key = "e" * 64
        assert cache.get(key) is MISS
        assert cache.get(key) is MISS
        assert cache.get(key) is MISS
        assert remote.calls["get"] == 1  # one round-trip, two memo hits
        assert cache.tier_stats()["negative_hits"] == 2
        cache.close()

    def test_put_clears_the_negative_memo(self, tmp_path):
        remote = RecordingTier()
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        key = cache.key_for(_point, {"x": 2})
        assert cache.get(key) is MISS
        cache.put(key, _point(2))
        assert cache.get(key)["sq"] == 4
        cache.close()

    def test_concurrent_fetches_single_flight(self, tmp_path):
        key = "f" * 64
        remote = RecordingTier({key: _entry_blob(5)}, delay=0.15)
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        results = []
        threads = [threading.Thread(target=lambda: results.append(cache.get(key)))
                   for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [5] * 6
        assert remote.calls["get"] == 1  # one fetch, five coalesced
        assert cache.tier_stats()["coalesced_fetches"] == 5
        cache.close()

    def test_put_pushes_asynchronously(self, tmp_path):
        remote = RecordingTier()
        cache = TieredCache(remote=remote, root=tmp_path, fingerprint="t")
        key = cache.key_for(_point, {"x": 4})
        cache.put(key, _point(4), fn="f", label="l")
        cache.drain()
        assert remote.contains(key)
        # The pushed blob carries the full entry, metadata included.
        entry = pickle.loads(remote.blobs[key])
        assert entry.fn == "f" and entry.label == "l"
        assert cache.tier_stats()["pushes"] == 1
        cache.close()


class TestHTTPPeerTier:
    def test_roundtrip_over_http(self, peer):
        tier = HTTPPeerTier(peer.url)
        key = "a" * 64
        assert tier.get_blob(key) is None
        assert not tier.contains(key)
        blob = _entry_blob({"x": 1})
        assert tier.put_blob(key, blob)
        assert tier.contains(key)
        assert tier.get_blob(key) == blob
        assert tier.keys() == [key]
        stats = tier.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["errors"] == 0

    def test_proxy_env_vars_are_ignored(self, peer, monkeypatch):
        """Peer traffic is intra-fleet; http_proxy must never swallow it
        (fail-open would hide the misrouting as eternal misses)."""
        monkeypatch.setenv("http_proxy", "http://127.0.0.1:1")
        monkeypatch.setenv("HTTP_PROXY", "http://127.0.0.1:1")
        monkeypatch.delenv("no_proxy", raising=False)
        tier = HTTPPeerTier(peer.url, timeout=2.0)
        assert tier.put_blob("e" * 64, _entry_blob(3))
        assert tier.get_blob("e" * 64) == _entry_blob(3)
        assert tier.stats()["errors"] == 0

    def test_peer_rejects_malformed_keys(self, peer):
        import urllib.error
        import urllib.request

        for path in ("/cache/shortkey", "/cache/" + "Z" * 64, "/nope"):
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(peer.url + path, timeout=5.0)

    def test_peer_rejects_negative_content_length(self, peer):
        """A lying Content-Length must not pin a handler thread."""
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", peer.port, timeout=5.0)
        try:
            conn.putrequest("PUT", "/cache/" + "a" * 64)
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_peer_oversize_put_closes_the_connection(self, peer):
        """Refusing before the body is read must hang up, not desync."""
        import http.client

        from repro.runtime.tiers import MAX_BLOB_BYTES

        conn = http.client.HTTPConnection("127.0.0.1", peer.port, timeout=5.0)
        try:
            conn.putrequest("PUT", "/cache/" + "a" * 64)
            conn.putheader("Content-Length", str(MAX_BLOB_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
            response.read()
            # The server hung up (the unread body would otherwise parse
            # as the next request); a fresh request needs a reconnect.
            assert response.will_close
        finally:
            conn.close()

    def test_peer_rejects_checksum_mismatch_on_put(self, peer):
        import urllib.error
        import urllib.request

        from repro.runtime.tiers import CHECKSUM_HEADER

        request = urllib.request.Request(
            peer.url + "/cache/" + "b" * 64, data=b"payload", method="PUT",
            headers={CHECKSUM_HEADER: "0" * 64})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400
        assert not peer.cache.contains("b" * 64)

    def test_peer_store_is_a_plain_cache_dir(self, peer, tmp_path):
        """The peer's directory is interchangeable with any cache dir."""
        tier = HTTPPeerTier(peer.url)
        tier.put_blob("c" * 64, _entry_blob("shared"))
        assert peer.cache.get("c" * 64) == "shared"

    def test_peer_stats_endpoint(self, peer):
        tier = HTTPPeerTier(peer.url)
        tier.put_blob("d" * 64, _entry_blob(1))
        stats = tier.peer_stats()
        assert stats["entries"] == 1 and stats["puts"] == 1


class TestBulkSync:
    def test_iter_keys_ignores_unrelated_pkl_files(self, tmp_path):
        """A user-supplied --cache-dir may hold foreign .pkl files;
        push must not try to send their stems as keys."""
        cache = ResultCache(root=tmp_path, fingerprint="t")
        key = cache.key_for(_point, {"x": 1})
        cache.put(key, _point(1))
        (tmp_path / "notes.pkl").write_bytes(b"unrelated")
        (tmp_path / "ab").mkdir(exist_ok=True)
        (tmp_path / "ab" / "shortname.pkl").write_bytes(b"also unrelated")
        assert list(cache.iter_keys()) == [key]
        report = push_all(cache, RecordingTier())
        assert report.copied == 1 and report.failed == 0

    def test_push_then_pull_roundtrip(self, peer, tmp_path):
        source = ResultCache(root=tmp_path / "src", fingerprint="t")
        for i in range(4):
            source.put(source.key_for(_point, {"x": i}), _point(i))
        tier = HTTPPeerTier(peer.url)
        report = push_all(source, tier)
        assert report.copied == 4 and report.failed == 0
        # Second push skips everything.
        assert push_all(source, tier).skipped == 4
        target = ResultCache(root=tmp_path / "dst", fingerprint="t")
        report = pull_all(target, tier)
        assert report.copied == 4
        for i in range(4):
            value = target.get(target.key_for(_point, {"x": i}))
            assert value["sq"] == i * i
            assert np.array_equal(value["arr"], np.arange(i))

    def test_pull_rejects_traversal_keys_from_a_hostile_peer(self, tmp_path):
        """Peer-supplied keys must never steer writes outside the root."""

        class HostileTier(RecordingTier):
            def keys(self):
                return ["../../escape", "a/../../b", "A" * 64,
                        "f" * 63, "f" * 64]

        hostile = HostileTier({"f" * 64: _entry_blob(1)})
        root = tmp_path / "victim"
        report = pull_all(ResultCache(root=root), hostile)
        assert report.copied == 1  # only the well-formed key
        assert report.failed == 4  # every malformed "key" rejected
        assert not (tmp_path / "escape.pkl").exists()
        assert not (tmp_path / "b.pkl").exists()
        # Nothing outside the cache root was created.
        outside = [p for p in tmp_path.rglob("*") if not str(p).startswith(str(root))]
        assert outside == []

    def test_push_does_not_flatten_lru_recency(self, tmp_path):
        """Bulk sync reads every entry; mtimes must survive untouched."""
        import os

        cache = ResultCache(root=tmp_path, fingerprint="t")
        key = cache.key_for(_point, {"x": 9})
        cache.put(key, _point(9))
        path = cache.path_for(key)
        old = path.stat().st_mtime - 5000
        os.utime(path, (old, old))
        push_all(cache, RecordingTier())
        assert path.stat().st_mtime == old  # still the LRU-coldest entry

    def test_pull_from_dead_peer_raises_cleanly(self, tmp_path):
        with CachePeer(root=tmp_path / "p") as peer:
            url = peer.url
        tier = HTTPPeerTier(url, timeout=0.2)
        with pytest.raises(ConnectionError, match="unreachable"):
            pull_all(ResultCache(root=tmp_path / "d"), tier)


class TestTwoMachineDemo:
    """The acceptance scenario: two machines, one peer, zero recompute."""

    def test_machine_b_recomputes_nothing(self, peer, tmp_path):
        items = [WorkItem(fn=_point, kwargs={"x": i}, label=f"p{i}") for i in range(8)]

        cache_a = TieredCache(remote=peer.url, root=tmp_path / "a", fingerprint="t")
        machine_a = Runtime(cache=cache_a)
        results_a = machine_a.execute(items)
        assert machine_a.last_report.misses == 8
        cache_a.close()  # drain pushes: A's results are on the peer now

        cache_b = TieredCache(remote=peer.url, root=tmp_path / "b", fingerprint="t")
        machine_b = Runtime(cache=cache_b)
        results_b = machine_b.execute(items)
        cache_b.close()

        # Machine B ran ZERO design points: every value came from the peer.
        assert machine_b.last_report.misses == 0
        assert machine_b.last_report.hits == 8
        assert cache_b.tier_stats()["remote_hits"] == 8
        # ... and the results are bit-identical to machine A's.
        for va, vb in zip(results_a, results_b):
            assert va["sq"] == vb["sq"]
            assert np.array_equal(va["arr"], vb["arr"])
            assert va["arr"].dtype == vb["arr"].dtype

    def test_serve_and_sweep_share_one_peer(self, peer, tmp_path):
        """A sweep's results warm a serve node on another 'machine'."""
        from repro.serve import ServeClient, ServeConfig, ServerHandle
        from repro.serve.endpoints import runtime_point

        kwargs = {"network": "lenet", "group_size": 2, "density": 0.45}
        sweep_cache = TieredCache(remote=peer.url, root=tmp_path / "sweep")
        sweep = Runtime(cache=sweep_cache)
        direct = sweep.submit(runtime_point, **kwargs)
        sweep_cache.close()

        config = ServeConfig(port=0, workers=1, mode="thread",
                             cache_dir=str(tmp_path / "node"),
                             remote_cache=peer.url)
        with ServerHandle(config) as handle:
            with ServeClient(port=handle.port) as client:
                response = client.request("runtime_point", **kwargs)
        assert response.cached  # peer hit on the serve node's first request
        assert response.value == direct
