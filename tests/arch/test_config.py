"""Tests for hardware design points (Table II)."""

import dataclasses

import pytest

from repro.arch.config import (
    DesignKind,
    HardwareConfig,
    dcnn_config,
    dcnn_sp_config,
    paper_configs,
    ucnn_config,
)


class TestTable2Rows:
    def test_dcnn_row(self):
        cfg = dcnn_config()
        assert (cfg.vk, cfg.l1_input_bytes, cfg.l1_weight_bytes) == (8, 144, 1152)
        assert cfg.dense_macs_per_cycle == 8

    def test_ucnn_u3_row(self):
        cfg = ucnn_config(3)
        assert (cfg.vw, cfg.group_size) == (2, 4)
        assert (cfg.l1_input_bytes, cfg.l1_weight_bytes) == (768, 129)

    def test_ucnn_u17_row(self):
        cfg = ucnn_config(17)
        assert (cfg.vw, cfg.group_size) == (4, 2)
        assert (cfg.l1_input_bytes, cfg.l1_weight_bytes) == (1152, 232)

    def test_ucnn_large_row(self):
        for u in (64, 256):
            cfg = ucnn_config(u)
            assert (cfg.vw, cfg.group_size) == (8, 1)
            assert (cfg.l1_input_bytes, cfg.l1_weight_bytes) == (1920, 652)

    def test_all_rows_throughput_normalized(self):
        for cfg in paper_configs():
            assert cfg.dense_macs_per_cycle == 8
            assert cfg.num_pes == 32

    def test_paper_configs_order(self):
        names = [c.name for c in paper_configs()]
        assert names == ["DCNN", "DCNN_sp", "UCNN U3", "UCNN U17", "UCNN U64", "UCNN U256"]


class TestValidation:
    def test_ucnn_requires_u(self):
        with pytest.raises(ValueError, match="num_unique"):
            HardwareConfig(name="x", kind=DesignKind.UCNN, vw=2, group_size=4)

    def test_dense_rejects_group(self):
        with pytest.raises(ValueError, match="dense designs"):
            HardwareConfig(name="x", kind=DesignKind.DCNN, group_size=2)

    def test_ucnn_rejects_vk(self):
        with pytest.raises(ValueError, match="spatially"):
            HardwareConfig(name="x", kind=DesignKind.UCNN, vk=2, num_unique=17)

    def test_grid_must_match_pe_count(self):
        with pytest.raises(ValueError, match="pe_cols"):
            dataclasses.replace(dcnn_config(), pe_cols=5)

    def test_min_u(self):
        with pytest.raises(ValueError, match="num_unique"):
            ucnn_config(1)


class TestDerived:
    def test_precision_bytes(self):
        assert dcnn_config(16).act_bytes == 2
        assert dcnn_config(8).weight_bytes == 1

    def test_with_precision(self):
        cfg = ucnn_config(17, 16).with_precision(8)
        assert cfg.weight_bits == 8 and cfg.act_bits == 8
        assert cfg.group_size == 2

    def test_l2_scales_with_precision(self):
        assert dcnn_config(16).l2_input_bytes == 2 * dcnn_config(8).l2_input_bytes

    def test_is_ucnn(self):
        assert ucnn_config(17).is_ucnn
        assert not dcnn_sp_config().is_ucnn

    def test_ucnn_grid_keeps_columns_in_flight(self):
        """pe_cols * VW == 8 for every UCNN row (same columns in flight)."""
        for u in (3, 17, 64):
            cfg = ucnn_config(u)
            assert cfg.pe_cols * cfg.vw == 8
            assert cfg.pe_cols * cfg.pe_rows == 32
