"""Tests for DRAM traffic, the dataflow partition, and L2 accounting."""

from repro.arch.config import dcnn_config, dcnn_sp_config, ucnn_config
from repro.arch.dataflow import (
    filters_per_slot,
    kc_chunk_filters,
    layer_l2_traffic,
    partition_layer,
)
from repro.arch.dram import (
    DRAM_PJ_PER_BIT,
    RLE_BITS,
    activation_dram_bits,
    dense_weight_model,
    layer_dram_traffic,
    sparse_weight_model,
)
from repro.nn.tensor import ConvShape


def small_shape():
    return ConvShape(name="t", w=14, h=14, c=64, k=64, r=3, s=3, padding=1)


def huge_shape():
    return ConvShape(name="big", w=224, h=224, c=64, k=64, r=3, s=3, padding=1)


class TestDramTraffic:
    def test_weights_once_when_fitting(self):
        cfg = dcnn_config(16)
        shape = small_shape()
        model = dense_weight_model(shape, cfg)
        traffic = layer_dram_traffic(shape, cfg, model)
        assert traffic.weight_bits == shape.num_weights * 16

    def test_weights_refetched_per_tile(self):
        cfg = dcnn_config(16)
        shape = huge_shape()
        model = dense_weight_model(shape, cfg)
        traffic = layer_dram_traffic(shape, cfg, model)
        assert traffic.weight_bits > model.total_bits

    def test_first_layer_reads_inputs(self):
        cfg = dcnn_config(16)
        shape = small_shape()
        model = dense_weight_model(shape, cfg)
        with_first = layer_dram_traffic(shape, cfg, model, first_layer=True)
        without = layer_dram_traffic(shape, cfg, model, first_layer=False)
        assert with_first.input_bits > 0
        assert without.input_bits == 0

    def test_spilling_layer_writes_outputs(self):
        cfg = dcnn_config(16)
        shape = huge_shape()
        model = dense_weight_model(shape, cfg)
        traffic = layer_dram_traffic(shape, cfg, model)
        assert traffic.output_bits > 0

    def test_energy_is_20pj_per_bit(self):
        cfg = dcnn_config(16)
        shape = small_shape()
        traffic = layer_dram_traffic(shape, cfg, dense_weight_model(shape, cfg))
        assert traffic.energy_pj == traffic.total_bits * DRAM_PJ_PER_BIT


class TestCompression:
    def test_dcnn_sp_activation_rle(self):
        cfg = dcnn_sp_config(8)
        bits = activation_dram_bits(1000, cfg, density=0.35)
        assert bits == 350 * (8 + RLE_BITS)

    def test_dense_designs_ship_dense_activations(self):
        for cfg in (dcnn_config(8), ucnn_config(17, 8)):
            assert activation_dram_bits(1000, cfg, 0.35) == 8000

    def test_sparse_weight_model(self):
        cfg = dcnn_sp_config(8)
        shape = small_shape()
        model = sparse_weight_model(shape, cfg, weight_density=0.5)
        expected = shape.num_weights // 2 * (8 + RLE_BITS)
        assert model.total_bits == expected


class TestPartition:
    def test_filters_per_slot(self):
        assert filters_per_slot(dcnn_config()) == 8
        assert filters_per_slot(ucnn_config(17)) == 2

    def test_work_items_cover_layer(self):
        shape = small_shape()
        for cfg in (dcnn_config(), ucnn_config(3), ucnn_config(17)):
            part = partition_layer(shape, cfg)
            per_slot = filters_per_slot(cfg)
            assert part.col_groups * cfg.vw >= shape.out_w
            assert part.filter_slots * per_slot >= shape.k

    def test_rounds_positive(self):
        part = partition_layer(small_shape(), dcnn_config())
        assert part.rounds >= 1

    def test_kc_fills_l2(self):
        shape = small_shape()
        cfg = dcnn_config(16)
        kc = kc_chunk_filters(shape, cfg)
        assert kc * shape.filter_size * 16 <= cfg.l2_weight_bytes * 8 or kc == 1
        assert kc <= shape.k


class TestL2Traffic:
    def test_outputs_written_once(self):
        shape = small_shape()
        cfg = dcnn_config(16)
        traffic = layer_l2_traffic(shape, cfg, weight_stream_bits=1000)
        assert traffic.output_write_bits == shape.num_outputs * 16

    def test_weight_reads_scale_with_column_batches(self):
        cfg = dcnn_config(16)
        narrow = ConvShape(name="n", w=10, h=10, c=8, k=8, r=3, s=3, padding=1)
        wide = ConvShape(name="w", w=130, h=10, c=8, k=8, r=3, s=3, padding=1)
        t_narrow = layer_l2_traffic(narrow, cfg, weight_stream_bits=1000)
        t_wide = layer_l2_traffic(wide, cfg, weight_stream_bits=1000)
        assert t_wide.weight_read_bits > t_narrow.weight_read_bits

    def test_first_layer_fills_inputs(self):
        shape = small_shape()
        cfg = dcnn_config(16)
        first = layer_l2_traffic(shape, cfg, 1000, first_layer=True)
        later = layer_l2_traffic(shape, cfg, 1000, first_layer=False)
        assert first.input_fill_bits == shape.num_inputs * 16
        assert later.input_fill_bits == 0

    def test_ucnn_halo_amortized_by_vw(self):
        """Per output column, UCNN reads (R+VW-1)/VW input columns, less
        than DCNN's R — the slide-overlap benefit of spatial vectors."""
        shape = small_shape()
        dcnn = layer_l2_traffic(shape, dcnn_config(16), 10_000)
        ucnn = layer_l2_traffic(shape, ucnn_config(17, 16), 10_000)
        assert ucnn.input_read_bits < dcnn.input_read_bits

    def test_total_access_bits(self):
        shape = small_shape()
        traffic = layer_l2_traffic(shape, dcnn_config(16), 1000, first_layer=True)
        total = (traffic.weight_read_bits + traffic.input_read_bits
                 + traffic.output_write_bits + traffic.weight_fill_bits
                 + traffic.input_fill_bits)
        assert traffic.total_access_bits == total
