"""Tests for buffer tiling and the banked input buffer (Eqs. 3-4)."""

import numpy as np
import pytest

from repro.arch.banking import BankedLayout, simulate_vector_reads
from repro.arch.buffers import (
    channel_tile,
    input_dram_tiles,
    inputs_fit_on_chip,
    outputs_fit_on_chip,
    tile_plan,
    weight_buffer_entries,
)
from repro.arch.config import dcnn_config, ucnn_config
from repro.nn.tensor import ConvShape


def shape_3x3(c=256, k=256, hw=14):
    return ConvShape(name="t", w=hw, h=hw, c=c, k=k, r=3, s=3, padding=1)


class TestChannelTile:
    def test_fits_l1(self):
        cfg = ucnn_config(17, 16)
        shape = shape_3x3()
        ct = channel_tile(shape, cfg)
        capacity = cfg.l1_input_bytes // cfg.act_bytes
        assert ct * shape.s * (cfg.vw + shape.r - 1) <= capacity

    def test_8bit_doubles_tile(self):
        shape = shape_3x3()
        assert channel_tile(shape, ucnn_config(17, 8)) >= 2 * channel_tile(shape, ucnn_config(17, 16)) - 1

    def test_capped_at_c(self):
        shape = shape_3x3(c=2)
        assert channel_tile(shape, ucnn_config(17, 16)) == 2

    def test_at_least_one(self):
        shape = ConvShape(name="big", w=30, h=30, c=4, k=1, r=11, s=11)
        cfg = dcnn_config(16)
        assert channel_tile(shape, cfg) >= 1

    def test_1x1_layers_get_big_tiles(self):
        shape = ConvShape(name="pw", w=14, h=14, c=1024, k=256, r=1, s=1)
        cfg = ucnn_config(17, 16)
        assert channel_tile(shape, cfg) >= 100


class TestTilePlan:
    def test_tiles_cover_channels(self):
        shape = shape_3x3(c=100)
        plan = tile_plan(shape, ucnn_config(17, 16))
        assert plan.channel_tile * plan.num_tiles >= 100

    def test_tile_entries(self):
        plan = tile_plan(shape_3x3(), ucnn_config(17, 16))
        assert plan.tile_entries == 9 * plan.channel_tile

    def test_input_region(self):
        cfg = ucnn_config(17, 16)
        plan = tile_plan(shape_3x3(), cfg)
        assert plan.input_region_entries == plan.channel_tile * 3 * (cfg.vw + 2)


class TestL2Fit:
    def test_small_layer_fits(self):
        assert inputs_fit_on_chip(shape_3x3(hw=14), dcnn_config(16))

    def test_huge_layer_spills(self):
        shape = ConvShape(name="big", w=224, h=224, c=64, k=64, r=3, s=3, padding=1)
        cfg = dcnn_config(16)
        assert not inputs_fit_on_chip(shape, cfg)
        assert input_dram_tiles(shape, cfg) > 1

    def test_outputs_fit(self):
        assert outputs_fit_on_chip(shape_3x3(), dcnn_config(16))

    def test_fit_tiles_consistency(self):
        shape = shape_3x3()
        cfg = dcnn_config(16)
        assert input_dram_tiles(shape, cfg) == 1

    def test_weight_buffer_entries(self):
        assert weight_buffer_entries(ucnn_config(17, 16)) == 17
        assert weight_buffer_entries(dcnn_config(16)) == 576


class TestBankedLayout:
    def test_paper_example_vw2_r3_no_waste(self):
        """The paper's example: VW=2 for R=3 eliminates waste."""
        layout = BankedLayout(r=3, s=3, channel_tile=8, vw=2)
        assert layout.wasted_fraction == 0.0

    def test_waste_below_two_x(self):
        for r in (1, 3, 5, 7, 11):
            for vw in (1, 2, 4, 8):
                layout = BankedLayout(r=r, s=3, channel_tile=4, vw=vw)
                assert layout.wasted_fraction < 0.5

    def test_eq3_bijection(self):
        layout = BankedLayout(r=3, s=3, channel_tile=4, vw=4)
        for tap in range(3):
            banks = layout.banks_for_vector(tap)
            assert sorted(banks) == list(range(4))

    def test_conflict_free_certificate(self):
        assert BankedLayout(r=5, s=5, channel_tile=3, vw=4).is_conflict_free()

    def test_eq4_addresses_in_range(self):
        layout = BankedLayout(r=3, s=2, channel_tile=4, vw=2)
        for tap in range(3):
            for s in range(2):
                for c in range(4):
                    for v in range(2):
                        assert 0 <= layout.addr(tap, s, c, v) < layout.bank_words

    def test_simulated_stream_no_conflicts(self, rng):
        layout = BankedLayout(r=3, s=3, channel_tile=8, vw=4)
        n = 50
        indirections = np.stack([
            rng.integers(0, 3, size=n),
            rng.integers(0, 3, size=n),
            rng.integers(0, 8, size=n),
        ], axis=1)
        assert simulate_vector_reads(layout, indirections) == 0

    def test_fill_positions_consistent_with_reads(self):
        """Eq 4 must read back the word the fill scheme placed."""
        layout = BankedLayout(r=3, s=2, channel_tile=2, vw=2)
        fill = layout.fill_positions()
        for tap in range(layout.r):
            for v in range(layout.vw):
                column = tap + v  # input column hit by slide v at tap r
                for s in range(layout.s):
                    for c in range(layout.channel_tile):
                        word = s * layout.channel_tile + c
                        bank, addr = fill[(column, word)]
                        assert bank == layout.bank(tap, v)
                        assert addr == layout.addr(tap, s, c, v)

    def test_bad_coords(self):
        layout = BankedLayout(r=3, s=3, channel_tile=2, vw=2)
        with pytest.raises(ValueError):
            layout.bank(3, 0)
        with pytest.raises(ValueError):
            layout.addr(0, 3, 0, 0)
