"""End-to-end: serve nodes sharing results through a cache peer.

Real TCP serve nodes (thread shards, ephemeral ports) with *distinct*
cache directories — two "machines" — plus a real HTTP cache peer
between them.  Covers the fleet story: node B's first request for a
point node A computed is a peer hit (no shard touched), the remote
tier's counters surface through ``_stats``, and the peer dying
mid-stream degrades to local compute without a single client-visible
error.
"""

import pytest

from repro.runtime import CachePeer
from repro.serve import ServeClient, ServeConfig, ServerHandle, default_mix, run_load
from repro.serve.server import Server


def make_config(tmp_path, node: str, peer_url: str, **overrides) -> ServeConfig:
    defaults = dict(port=0, workers=2, mode="thread",
                    cache_dir=str(tmp_path / f"cache-{node}"),
                    remote_cache=peer_url, remote_timeout=0.3,
                    max_delay_ms=1.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture
def peer(tmp_path):
    with CachePeer(root=tmp_path / "peer") as running:
        yield running


class TestPeerSharing:
    def test_second_nodes_first_request_is_a_peer_hit(self, tmp_path, peer):
        kwargs = {"network": "lenet", "group_size": 2, "density": 0.35}
        with ServerHandle(make_config(tmp_path, "a", peer.url)) as node_a:
            with ServeClient(port=node_a.port) as client:
                cold = client.request("runtime_point", **kwargs)
            node_a.server.cache.drain()  # push-on-put lands on the peer
        assert not cold.cached

        with ServerHandle(make_config(tmp_path, "b", peer.url)) as node_b:
            with ServeClient(port=node_b.port) as client:
                warm = client.request("runtime_point", **kwargs)
                stats = client.stats()
        # Node B never computed: its very first request was a cache hit
        # served from the peer (no shard involved), bit-identical to A's.
        assert warm.cached and warm.shard is None
        assert warm.value == cold.value
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["tier"]["remote_hits"] == 1
        assert peer.stats_payload()["hits"] >= 1

    def test_mixed_load_across_two_nodes_no_recompute(self, tmp_path, peer):
        mix = default_mix(16)
        with ServerHandle(make_config(tmp_path, "a", peer.url)) as node_a:
            first = run_load("127.0.0.1", node_a.port, mix, concurrency=4)
            node_a.server.cache.drain()
        assert first.stats.errors == 0

        with ServerHandle(make_config(tmp_path, "b", peer.url)) as node_b:
            second = run_load("127.0.0.1", node_b.port, mix, concurrency=4)
            stats = node_b.stats()
        assert second.stats.errors == 0
        assert second.stats.hit_rate == 1.0  # all peer/local hits
        assert stats["misses"] == 0          # zero design points recomputed
        for a, b in zip(first.records, second.records):
            assert a.value == b.value

    def test_tier_stats_absent_without_remote_cache(self, tmp_path):
        config = ServeConfig(port=0, workers=1, mode="thread",
                             cache_dir=str(tmp_path / "plain"))
        with ServerHandle(config) as handle:
            with ServeClient(port=handle.port) as client:
                stats = client.stats()
        assert "tier" not in stats


class TestPeerDeathMidStream:
    def test_requests_keep_succeeding_after_peer_dies(self, tmp_path):
        peer = CachePeer(root=tmp_path / "peer")
        peer.start()
        kwargs_warm = {"network": "lenet", "group_size": 2, "density": 0.61}
        with ServerHandle(make_config(tmp_path, "a", peer.url)) as node_a:
            with ServeClient(port=node_a.port) as client:
                expected = client.request("runtime_point", **kwargs_warm)
            node_a.server.cache.drain()

        with ServerHandle(make_config(tmp_path, "b", peer.url)) as node_b:
            with ServeClient(port=node_b.port, timeout=30.0) as client:
                # First request rides the live peer ...
                warm = client.request("runtime_point", **kwargs_warm)
                assert warm.cached and warm.value == expected.value
                # ... then the peer dies mid-stream.
                peer.stop()
                # Never-seen points now fall through to local compute —
                # same connection, no client-visible error.
                fresh = client.request(
                    "runtime_point", network="lenet", group_size=4, density=0.15)
                assert fresh.ok and not fresh.cached
                # And a repeat is a *local* hit (promotion made B durable).
                repeat = client.request("runtime_point", **kwargs_warm)
                assert repeat.ok and repeat.cached
                stats = client.stats()
        assert stats["errors"] == 0
        assert stats["tier"]["remote_hits"] >= 1
        tier_errors = stats["tier"]["remote"]["errors"]
        assert tier_errors >= 1  # the dead peer was noticed, and contained

    def test_event_loop_stays_responsive_while_peer_hangs(self, tmp_path):
        """A hung peer may stall one request, never the whole server."""
        import socket
        import threading
        import time

        # A socket that listens but never accepts: the tier's connect
        # succeeds (kernel backlog) and the read hangs until timeout.
        gate = socket.socket()
        gate.bind(("127.0.0.1", 0))
        gate.listen(1)
        url = f"http://127.0.0.1:{gate.getsockname()[1]}"
        try:
            config = make_config(tmp_path, "slow", url,
                                 workers=1, remote_timeout=2.0)
            with ServerHandle(config) as handle:
                stalled = {}

                def stalled_request():
                    with ServeClient(port=handle.port, timeout=30.0) as c:
                        stalled["response"] = c.request(
                            "runtime_point", network="lenet",
                            group_size=2, density=0.27)

                thread = threading.Thread(target=stalled_request)
                thread.start()
                time.sleep(0.4)  # request is now waiting on the hung peer
                started = time.perf_counter()
                with ServeClient(port=handle.port, timeout=10.0) as c:
                    assert c.value("ping") == {"pong": None}
                ping_latency = time.perf_counter() - started
                thread.join()
            # The remote fetch ran off the loop: ping answered while the
            # other request sat out its 2s remote timeout.
            assert ping_latency < 1.0
            assert stalled["response"].ok and not stalled["response"].cached
        finally:
            gate.close()

    def test_node_with_never_alive_peer_still_serves(self, tmp_path):
        with CachePeer(root=tmp_path / "ghost") as ghost:
            unreachable = ghost.url  # bound, then immediately freed
        config = make_config(tmp_path, "solo", unreachable)
        mix = default_mix(10)
        with ServerHandle(config) as handle:
            cold = run_load("127.0.0.1", handle.port, mix, concurrency=4)
            warm = run_load("127.0.0.1", handle.port, mix, concurrency=4)
        assert cold.stats.errors == 0 and warm.stats.errors == 0
        assert warm.stats.hit_rate == 1.0  # local cache fully effective


class TestOwnedCacheLifecycle:
    def test_server_closes_its_tiered_cache_on_stop(self, tmp_path, peer):
        handle = ServerHandle(make_config(tmp_path, "a", peer.url))
        handle.start()
        with ServeClient(port=handle.port) as client:
            client.request("runtime_point", network="lenet",
                           group_size=2, density=0.8)
        handle.stop()
        # close() ran: the write-back executor is gone and the push landed.
        assert handle.server.cache._writeback._shutdown
        assert peer.stats_payload()["puts"] == 1

    def test_injected_cache_is_not_closed(self, tmp_path, peer):
        from repro.runtime import TieredCache

        cache = TieredCache(remote=peer.url, root=tmp_path / "inj")
        config = ServeConfig(port=0, workers=1, mode="thread")
        server = Server(config, cache=cache)
        assert not server._owns_cache
        cache.close()
