"""Tests for the micro-batcher: both flush triggers, plus bookkeeping."""

import asyncio

import pytest

from repro.serve import MicroBatcher


def run(coro):
    return asyncio.run(coro)


class TestSizeTrigger:
    def test_flushes_every_max_batch_items(self):
        async def scenario():
            batches = []

            async def flush(batch):
                batches.append(batch)

            batcher = MicroBatcher(flush, max_batch=3, max_delay=60.0)
            for i in range(7):
                await batcher.submit(i)
            full_batches = list(batches)
            leftover = batcher.pending_count()
            await batcher.aclose()
            return full_batches, leftover, batcher

        full_batches, leftover, batcher = run(scenario())
        assert full_batches == [[0, 1, 2], [3, 4, 5]]
        assert leftover == 1
        assert batcher.flushed_on_size == 2

    def test_max_batch_one_flushes_immediately(self):
        async def scenario():
            batches = []

            async def flush(batch):
                batches.append(batch)

            batcher = MicroBatcher(flush, max_batch=1, max_delay=60.0)
            await batcher.submit("a")
            await batcher.submit("b")
            await batcher.aclose()
            return batches

        assert run(scenario()) == [["a"], ["b"]]


class TestTimeTrigger:
    def test_partial_batch_flushes_after_max_delay(self):
        async def scenario():
            batches = []

            async def flush(batch):
                batches.append(batch)

            batcher = MicroBatcher(flush, max_batch=100, max_delay=0.02)
            await batcher.submit("a")
            await batcher.submit("b")
            before_delay = list(batches)
            await asyncio.sleep(0.2)
            await batcher.aclose()
            return before_delay, batches, batcher

        before_delay, batches, batcher = run(scenario())
        assert before_delay == []
        assert batches == [["a", "b"]]
        assert batcher.flushed_on_timeout == 1
        assert batcher.flushed_on_size == 0

    def test_size_trigger_cancels_pending_timer(self):
        async def scenario():
            batches = []

            async def flush(batch):
                batches.append(batch)

            batcher = MicroBatcher(flush, max_batch=2, max_delay=0.02)
            await batcher.submit(1)  # starts the timer
            await batcher.submit(2)  # fills the batch -> size flush
            await asyncio.sleep(0.2)  # timer must not double-flush
            await batcher.aclose()
            return batches, batcher

        batches, batcher = run(scenario())
        assert batches == [[1, 2]]
        assert batcher.flushed_on_size == 1
        assert batcher.flushed_on_timeout == 0


class TestExplicitFlush:
    def test_flush_now_drains_pending(self):
        async def scenario():
            batches = []

            async def flush(batch):
                batches.append(batch)

            batcher = MicroBatcher(flush, max_batch=100, max_delay=60.0)
            await batcher.submit("x")
            await batcher.flush_now()
            emptied = batcher.pending_count()
            await batcher.flush_now()  # no-op on empty queue
            await batcher.aclose()
            return batches, emptied

        batches, emptied = run(scenario())
        assert batches == [["x"]]
        assert emptied == 0

    def test_aclose_flushes_leftovers(self):
        async def scenario():
            batches = []

            async def flush(batch):
                batches.append(batch)

            batcher = MicroBatcher(flush, max_batch=100, max_delay=60.0)
            await batcher.submit("tail")
            await batcher.aclose()
            return batches

        assert run(scenario()) == [["tail"]]


class TestValidation:
    def test_rejects_bad_bounds(self):
        async def noop(batch):
            pass

        with pytest.raises(ValueError):
            MicroBatcher(noop, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(noop, max_delay=-1.0)
