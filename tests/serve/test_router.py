"""Tests for consistent-hash shard routing."""

import hashlib

import pytest

from repro.serve import ShardRouter


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestRouting:
    def test_deterministic_across_instances(self):
        a, b = ShardRouter(4), ShardRouter(4)
        assert [a.route(k) for k in _keys(100)] == [b.route(k) for k in _keys(100)]

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert {router.route(k) for k in _keys(50)} == {0}

    def test_all_shards_reachable(self):
        router = ShardRouter(4)
        owners = {router.route(k) for k in _keys(2000)}
        assert owners == {0, 1, 2, 3}

    def test_load_is_roughly_balanced(self):
        router = ShardRouter(4)
        counts = [0, 0, 0, 0]
        for k in _keys(4000):
            counts[router.route(k)] += 1
        # With 64 virtual points per shard the split stays well away
        # from degenerate; each shard should own 10%-50% of the keys.
        assert all(400 <= c <= 2000 for c in counts)


class TestResizeStability:
    def test_growing_pool_moves_few_keys(self):
        """N -> N+1 shards should remap ~1/(N+1) of keys, not all of them."""
        before = ShardRouter(4)
        after = before.resized(5)
        keys = _keys(2000)
        moved = sum(1 for k in keys if before.route(k) != after.route(k))
        assert moved / len(keys) < 0.4  # modulo hashing would move ~0.8
        # Keys that moved all landed on some shard of the larger pool.
        assert {after.route(k) for k in keys} == {0, 1, 2, 3, 4}

    def test_shrinking_pool_only_reassigns_lost_shard(self):
        before = ShardRouter(5)
        after = before.resized(4)
        for k in _keys(1000):
            if before.route(k) != 4:  # keys not owned by the removed shard
                assert after.route(k) == before.route(k)

    def test_resized_keeps_replica_count(self):
        assert ShardRouter(2, replicas=16).resized(3).replicas == 16


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, replicas=0)
