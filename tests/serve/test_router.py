"""Tests for consistent-hash shard routing."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ShardRouter


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestRouting:
    def test_deterministic_across_instances(self):
        a, b = ShardRouter(4), ShardRouter(4)
        assert [a.route(k) for k in _keys(100)] == [b.route(k) for k in _keys(100)]

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert {router.route(k) for k in _keys(50)} == {0}

    def test_all_shards_reachable(self):
        router = ShardRouter(4)
        owners = {router.route(k) for k in _keys(2000)}
        assert owners == {0, 1, 2, 3}

    def test_load_is_roughly_balanced(self):
        router = ShardRouter(4)
        counts = [0, 0, 0, 0]
        for k in _keys(4000):
            counts[router.route(k)] += 1
        # With 64 virtual points per shard the split stays well away
        # from degenerate; each shard should own 10%-50% of the keys.
        assert all(400 <= c <= 2000 for c in counts)


class TestResizeStability:
    def test_growing_pool_moves_few_keys(self):
        """N -> N+1 shards should remap ~1/(N+1) of keys, not all of them."""
        before = ShardRouter(4)
        after = before.resized(5)
        keys = _keys(2000)
        moved = sum(1 for k in keys if before.route(k) != after.route(k))
        assert moved / len(keys) < 0.4  # modulo hashing would move ~0.8
        # Keys that moved all landed on some shard of the larger pool.
        assert {after.route(k) for k in keys} == {0, 1, 2, 3, 4}

    def test_shrinking_pool_only_reassigns_lost_shard(self):
        before = ShardRouter(5)
        after = before.resized(4)
        for k in _keys(1000):
            if before.route(k) != 4:  # keys not owned by the removed shard
                assert after.route(k) == before.route(k)

    def test_resized_keeps_replica_count(self):
        assert ShardRouter(2, replicas=16).resized(3).replicas == 16


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, replicas=0)


class TestRingProperties:
    """Hypothesis-driven guarantees the fabric front-end relies on:
    the router's distribution and resize behaviour, checked across
    arbitrary key populations rather than one fixed key set."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_distribution_within_2x_of_uniform_across_8_shards(self, seed):
        router = ShardRouter(8)
        keys = [hashlib.sha256(f"{seed}:{i}".encode()).hexdigest()
                for i in range(4000)]
        counts = [0] * 8
        for k in keys:
            counts[router.route(k)] += 1
        fair = len(keys) / 8
        assert all(count <= 2 * fair for count in counts)
        assert all(count > 0 for count in counts)

    @settings(max_examples=25, deadline=None)
    @given(num_shards=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_grow_remaps_at_most_about_one_share(self, num_shards, seed):
        """N -> N+1 moves ~1/(N+1) of keys, all onto the new shard."""
        before = ShardRouter(num_shards)
        after = before.resized(num_shards + 1)
        keys = [hashlib.sha256(f"{seed}:{i}".encode()).hexdigest()
                for i in range(1500)]
        moved = [k for k in keys if before.route(k) != after.route(k)]
        assert all(after.route(k) == num_shards for k in moved)
        # 2x slack over the ideal share for virtual-point variance.
        assert len(moved) / len(keys) <= 2.0 / (num_shards + 1)

    @settings(max_examples=25, deadline=None)
    @given(num_shards=st.integers(min_value=2, max_value=12),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_shrink_remaps_only_the_lost_shards_keys(self, num_shards, seed):
        before = ShardRouter(num_shards)
        after = before.resized(num_shards - 1)
        keys = [hashlib.sha256(f"{seed}:{i}".encode()).hexdigest()
                for i in range(1000)]
        lost = num_shards - 1
        for k in keys:
            if before.route(k) != lost:
                assert after.route(k) == before.route(k)
