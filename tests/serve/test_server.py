"""End-to-end serving tests: parity, caching, coalescing, robustness.

These run a real TCP server (thread-mode shards, ephemeral port) and
talk to it with the real clients, so they cover the wire protocol, the
batcher, the router, and the cache fast path together.
"""

import json
import time

import pytest

from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerHandle,
    default_mix,
    register,
    resolve,
    run_load,
)
from repro.serve.protocol import to_jsonable


@register("slow_echo")
def slow_echo(value: float = 1.0, seconds: float = 0.05) -> float:
    """Test endpoint: sleep, then echo (exercises single-flight)."""
    time.sleep(seconds)
    return value


@register("bad_payload")
def bad_payload() -> bytes:
    """Test endpoint returning something JSON cannot encode."""
    return b"\x00raw bytes"


def make_config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(port=0, workers=2, mode="thread",
                    cache_dir=str(tmp_path / "cache"), max_delay_ms=1.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def direct_value(endpoint: str, kwargs: dict):
    """What the server should answer: direct call, JSON round-tripped."""
    value = resolve(endpoint)(**kwargs)
    return json.loads(json.dumps(to_jsonable(value)))


@pytest.fixture
def server(tmp_path):
    with ServerHandle(make_config(tmp_path)) as handle:
        yield handle


class TestBasics:
    def test_ping(self, server):
        with ServeClient(port=server.port) as client:
            assert client.value("ping", payload=42) == {"pong": 42}

    def test_unknown_endpoint_is_an_error_not_a_hangup(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeError, match="unknown endpoint"):
                client.request("no_such_endpoint")
            # The connection survives the error.
            assert client.value("ping") == {"pong": None}

    def test_endpoint_exception_reported(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeError, match="unknown design"):
                client.request("simulate", design="tpu")

    def test_unencodable_return_value_is_an_error_response(self, server):
        """A bad custom endpoint must not leave its request unanswered."""
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeError, match="not JSON-serializable"):
                client.request("bad_payload")
            assert client.value("ping") == {"pong": None}

    def test_cache_write_failure_does_not_hang_clients(self, tmp_path):
        """put() failing (full disk, bad perms) must still resolve requests."""
        from repro.runtime import ResultCache

        class BrokenPutCache(ResultCache):
            def put(self, key, value, fn="", label=""):
                raise OSError("disk full")

        config = make_config(tmp_path)
        broken = BrokenPutCache(root=tmp_path / "cache")
        with ServerHandle(config, cache=broken) as handle:
            with ServeClient(port=handle.port, timeout=10.0) as client:
                kwargs = {"network": "lenet", "group_size": 2, "density": 0.55}
                response = client.request("runtime_point", **kwargs)
        assert response.ok and not response.cached
        assert response.value == direct_value("runtime_point", kwargs)

    def test_meta_endpoints(self, server):
        with ServeClient(port=server.port) as client:
            names = client.value("_endpoints")
            assert "runtime_point" in names and "simulate" in names
            stats = client.stats()
            assert stats["requests"] >= 1


class TestParity:
    """Acceptance: served responses bit-identical to direct execution."""

    def test_runtime_point_matches_direct(self, server):
        kwargs = {"network": "lenet", "layer_index": 1, "group_size": 2, "density": 0.6}
        with ServeClient(port=server.port) as client:
            response = client.request("runtime_point", **kwargs)
        assert response.value == direct_value("runtime_point", kwargs)
        assert isinstance(response.value, float)

    def test_factorize_dict_matches_direct(self, server):
        kwargs = {"k": 4, "c": 8, "u": 5, "group_size": 2, "density": 0.7}
        with ServeClient(port=server.port) as client:
            value = client.value("factorize", **kwargs)
        assert value == direct_value("factorize", kwargs)
        assert value["engine"]["parity"] is True

    def test_engine_forward_matches_direct_and_dense(self, server):
        kwargs = {"k": 4, "c": 8, "u": 5, "group_size": 2, "size": 6}
        with ServeClient(port=server.port) as client:
            value = client.value("engine_forward", **kwargs)
        assert value == direct_value("engine_forward", kwargs)
        assert value["parity"] is True

    def test_cached_hit_returns_identical_value(self, server):
        kwargs = {"network": "lenet", "group_size": 4, "density": 0.3}
        with ServeClient(port=server.port) as client:
            first = client.request("runtime_point", **kwargs)
            second = client.request("runtime_point", **kwargs)
        assert not first.cached and second.cached
        assert first.value == second.value == direct_value("runtime_point", kwargs)
        assert second.shard is None  # hits never touch a worker

    def test_mixed_load_full_parity(self, server):
        mix = default_mix(30)
        result = run_load("127.0.0.1", server.port, mix, concurrency=4)
        assert result.stats.errors == 0
        for (endpoint, kwargs), record in zip(mix, result.records):
            assert record.value == direct_value(endpoint, kwargs), endpoint


class TestDurationLoad:
    def test_duration_mode_cycles_the_mix_until_the_deadline(self, server):
        """``duration=`` turns the fixed list into a sustained closed
        loop: the mix repeats until time is up, every issued request is
        answered, and records map back to mix slots by index order."""
        mix = default_mix(5)
        result = run_load("127.0.0.1", server.port, mix, concurrency=4,
                          duration=1.0)
        assert result.stats.errors == 0
        assert result.stats.requests > len(mix)  # it cycled
        for i, record in enumerate(result.records):
            endpoint, kwargs = mix[i % len(mix)]
            assert record.value == direct_value(endpoint, kwargs)

    def test_duration_zero_issues_nothing(self, server):
        result = run_load("127.0.0.1", server.port, default_mix(5),
                          concurrency=4, duration=0.0)
        assert result.stats.requests == 0

    def test_empty_mix_is_rejected(self, server):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", server.port, [], duration=1.0)


class TestCacheBehaviour:
    def test_warm_pass_is_all_hits(self, server):
        mix = default_mix(20)
        run_load("127.0.0.1", server.port, mix, concurrency=4)
        warm = run_load("127.0.0.1", server.port, mix, concurrency=4)
        assert warm.stats.hit_rate == 1.0
        assert warm.stats.errors == 0

    def test_cache_survives_server_restart(self, tmp_path):
        kwargs = {"network": "lenet", "group_size": 2, "density": 0.5}
        with ServerHandle(make_config(tmp_path)) as first:
            with ServeClient(port=first.port) as client:
                cold = client.request("runtime_point", **kwargs)
        with ServerHandle(make_config(tmp_path)) as second:
            with ServeClient(port=second.port) as client:
                warm = client.request("runtime_point", **kwargs)
        assert not cold.cached and warm.cached
        assert warm.value == cold.value

    def test_no_cache_mode_always_computes(self, tmp_path):
        config = make_config(tmp_path, cache_enabled=False)
        kwargs = {"network": "lenet", "group_size": 1, "density": 0.4}
        with ServerHandle(config) as handle:
            with ServeClient(port=handle.port) as client:
                first = client.request("runtime_point", **kwargs)
                second = client.request("runtime_point", **kwargs)
        assert not first.cached and not second.cached
        assert first.value == second.value

    def test_batched_error_does_not_poison_neighbors(self, tmp_path):
        """One failing request must not fail others in the same batch."""
        import asyncio

        from repro.serve import AsyncServeClient

        config = make_config(tmp_path, workers=1, max_batch=2, max_delay_ms=200.0)

        async def scenario(port):
            good_client = await AsyncServeClient.connect(port=port)
            bad_client = await AsyncServeClient.connect(port=port)
            try:
                good_task = asyncio.ensure_future(
                    good_client.request("slow_echo", value=3.0, seconds=0.01))
                bad_task = asyncio.ensure_future(
                    bad_client.request("simulate", design="tpu"))
                good = await asyncio.wait_for(good_task, timeout=10.0)
                with pytest.raises(ServeError, match="unknown design"):
                    await asyncio.wait_for(bad_task, timeout=10.0)
                return good
            finally:
                await good_client.aclose()
                await bad_client.aclose()

        with ServerHandle(config) as handle:
            good = asyncio.run(scenario(handle.port))
        assert good.ok and good.value == 3.0

    def test_coalesced_request_survives_owner_disconnect(self, tmp_path):
        """The first requester hanging up must not starve coalesced twins."""
        import asyncio

        from repro.serve import AsyncServeClient

        config = make_config(tmp_path, workers=1, max_batch=1)

        async def scenario(port):
            owner = await AsyncServeClient.connect(port=port)
            kwargs = {"value": 11.0, "seconds": 0.4}
            owner_task = asyncio.ensure_future(owner.request("slow_echo", **kwargs))
            await asyncio.sleep(0.1)
            twin = await AsyncServeClient.connect(port=port)
            twin_task = asyncio.ensure_future(twin.request("slow_echo", **kwargs))
            await asyncio.sleep(0.1)
            owner_task.cancel()
            await owner.aclose()  # owner hangs up mid-compute
            try:
                response = await asyncio.wait_for(twin_task, timeout=5.0)
            finally:
                await twin.aclose()
            return response

        with ServerHandle(config) as handle:
            response = asyncio.run(scenario(handle.port))
        assert response.ok and response.value == 11.0

    def test_single_flight_coalesces_identical_misses(self, tmp_path):
        """Concurrent identical cold requests compute once, not N times."""
        config = make_config(tmp_path, workers=1, max_batch=1)
        mix = [("slow_echo", {"value": 7.0, "seconds": 0.2})] * 6
        with ServerHandle(config) as handle:
            result = run_load("127.0.0.1", handle.port, mix, concurrency=6)
            stats = handle.stats()
        assert result.stats.errors == 0
        assert all(r.value == 7.0 for r in result.records)
        # One request computed; the rest either coalesced onto it or hit
        # the cache after it landed — never a second worker execution.
        assert stats["misses"] == 1
        assert stats["coalesced"] + stats["hits"] == 5


class TestStats:
    def test_counters_add_up(self, server):
        mix = default_mix(25)
        run_load("127.0.0.1", server.port, mix, concurrency=4)
        stats = server.stats()
        assert stats["requests"] == 25
        assert stats["hits"] + stats["misses"] + stats["coalesced"] == 25
        assert stats["misses"] >= 1
        assert sum(stats["per_shard"].values()) == stats["misses"]


class TestProgramPrewarm:
    def test_prewarmed_server_serves_with_zero_compiles(self, tmp_path):
        """Warm-start proof at the serve layer: pull artifacts, 0 misses."""
        from repro.engine import clear_program_cache
        from repro.engine.artifacts import ProgramArtifactTier, ProgramStore
        from repro.engine.program import set_artifact_tier
        from repro.serve.endpoints import network_forward

        # "Node A": compile into the artifact dir via the tier.
        store = ProgramStore(root=tmp_path / "cache")
        tier = ProgramArtifactTier(store)
        previous = set_artifact_tier(tier)
        try:
            clear_program_cache()
            ref = network_forward(seed=21, batch=2)
            tier.drain()
        finally:
            set_artifact_tier(previous)
            tier.close()
        clear_program_cache()

        # "Node B": same artifact dir, fresh program cache, prewarm on.
        config = make_config(tmp_path, workers=1, prewarm_programs=True)
        with ServerHandle(config) as handle:
            with ServeClient(port=handle.port) as client:
                response = client.send("network_forward", {"seed": 21, "batch": 2})
            stats = handle.stats()
        assert response.ok, response.error
        assert response.value["out_checksum"] == ref["out_checksum"]
        programs = stats["programs"]
        assert programs["prewarm"]["installed"] >= 2
        assert programs["misses"] == 0, f"prewarmed server compiled: {programs}"

    def test_stats_always_carry_programs_block(self, server):
        stats = server.stats()
        assert "programs" in stats
        assert set(stats["programs"]) >= {"entries", "hits", "misses", "artifact_hits"}
