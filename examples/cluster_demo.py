"""Cluster demo: a 3-node serving fabric on one machine.

Starts a `repro frontend` and three `repro worker` nodes in process
(ephemeral ports, thread-mode shards, fresh cache directories, shared
HMAC secret), then shows the three things the fabric adds on top of a
single server:

1. **routing** — a prioritized mixed workload fans out over the
   consistent-hash ring; the same design point always lands on the
   same worker, so each worker's cache stays warm for its key range;
2. **admission** — a deliberately tight low-priority token bucket
   sheds background traffic with a 503 while high-priority requests
   ride through untouched;
3. **failover** — one worker leaves and the ring hands its key range
   to the survivors without disturbing anyone else's.

Run:  python examples/cluster_demo.py
"""

import collections
import tempfile
from pathlib import Path

from repro.fabric import FrontendConfig, FrontendHandle, WorkerNode
from repro.serve import ServeConfig, ServeClient, run_load

SECRET = "cluster-demo-secret"
base = Path(tempfile.mkdtemp(prefix="repro-cluster-demo-"))


def worker_config(name: str) -> ServeConfig:
    return ServeConfig(port=0, workers=2, mode="thread", max_delay_ms=1.0,
                       cache_dir=str(base / name / "cache"), auth_secret=SECRET)


def prioritized_mix(n: int) -> list[tuple]:
    """Interactive (high) and background (low) design-point requests."""
    mix = []
    for i in range(n):
        kwargs = dict(network="lenet", layer_index=i % 3, group_size=2,
                      density=0.5, num_unique=17 + (i % 12))
        mix.append(("runtime_point", kwargs, "high" if i % 3 == 0 else "low"))
    return mix


frontend = FrontendHandle(FrontendConfig(
    port=0,
    heartbeat_timeout=1.0,
    rates={"low": 4.0},          # tight on purpose: the demo sheds
    auth_secret=SECRET,
))

with frontend:
    print(f"front-end on 127.0.0.1:{frontend.port}")
    workers = [WorkerNode(worker_config(f"w{i}"), "127.0.0.1", frontend.port,
                          worker_id=f"w{i}").start()
               for i in range(3)]
    print(f"3 workers joined: {frontend.stats()['membership']['ring_nodes']}\n")

    try:
        # -- routing: the ring splits the key space across the fleet --
        mix = prioritized_mix(90)
        result = run_load("127.0.0.1", frontend.port, mix,
                          concurrency=6, secret=SECRET)
        by_worker = collections.Counter(
            r.worker for r in result.records if r.ok and r.worker)
        owner: dict = {}
        sticky = True
        for record, (name, kwargs, _priority) in zip(result.records, mix):
            if record.ok and record.worker:
                key = name + str(sorted(kwargs.items()))
                sticky = sticky and owner.setdefault(key, record.worker) == record.worker
        s = result.stats
        print(f"routing: {s.requests} requests in {s.seconds:.2f}s "
              f"({s.throughput_rps:.0f} req/s)")
        for worker_id, count in sorted(by_worker.items()):
            print(f"  {worker_id}: {count} forwards")
        print(f"  every repeated design point hit its owning worker: {sticky}")

        # -- admission: low sheds at the bucket, high never does --
        shed = collections.Counter(r.priority for r in result.records if r.shed)
        served = collections.Counter(
            r.priority for r in result.records if r.ok)
        print(f"\nadmission: served {dict(served)}  shed {dict(shed)}")
        assert shed.get("high", 0) == 0, "high-priority traffic must not shed"
        high_lat = sorted(r.latency_ms for r in result.records
                          if r.ok and r.priority == "high")
        if high_lat:
            print(f"  high-priority p50 {high_lat[len(high_lat) // 2]:.2f} ms "
                  f"(unbothered by the low-priority squeeze)")

        # -- failover: a graceful leave moves one range, nothing else --
        workers[0].stop()
        print(f"\nw0 left the fleet: ring is now "
              f"{frontend.stats()['membership']['ring_nodes']}")
        with ServeClient(port=frontend.port, secret=SECRET) as client:
            response = client.send("runtime_point", dict(
                network="lenet", layer_index=0, group_size=2, density=0.5))
            print(f"  rerouted runtime_point -> {response.worker}: "
                  f"{response.value:.6f}")

        stats = frontend.stats()
        print(f"\nfront-end totals: {stats['requests']} requests, "
              f"{stats['forwarded']} forwarded, "
              f"{stats['admission']['shed_total']} shed, "
              f"{stats['forward_errors']} forward errors")
    finally:
        for worker in workers[1:]:
            worker.stop()
