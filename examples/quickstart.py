"""Quickstart: factorize a quantized convolution and count the savings.

Runs a small convolutional layer three ways —

1. dense reference (numpy im2col),
2. UCNN per-entry table walk (the datapath's ground truth),
3. UCNN compiled engine (the table program, executed as one segment
   scan over every output position),

verifies all outputs are bit-identical, and prints the arithmetic /
memory savings that weight repetition buys (the paper's Section III
story) next to the *measured* wall-clock speedup the compiled engine
gets from exploiting them.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import FactorizedConv
from repro.nn.reference import conv2d_im2col
from repro.quant import quantize_inq

rng = np.random.default_rng(0)

# A "trained" layer: 16 filters, 32 channels, 3x3 kernels, INQ-quantized
# to 16 power-of-two levels + zero (U = 17, the paper's INQ setting).
raw_weights = rng.normal(0.0, 0.05, size=(16, 32, 3, 3))
weights = quantize_inq(raw_weights)
print(f"quantized layer: U = {weights.num_unique} unique weights, "
      f"{weights.density:.0%} non-zero, filter size = {32 * 3 * 3}")

inputs = rng.integers(-64, 64, size=(32, 14, 14))
reference = conv2d_im2col(inputs, weights.values, stride=1, padding=1)


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


for group_size in (1, 2):
    conv = FactorizedConv(weights.values, group_size=group_size, padding=1)
    walk_out, walk_s = timed(conv.forward_per_entry, inputs)
    conv.forward(inputs)  # warm the compiled program path
    engine_out, engine_s = timed(conv.forward, inputs)
    assert np.array_equal(engine_out, reference), "engine != dense!"
    assert np.array_equal(walk_out, reference), "table walk != dense!"
    counts = conv.op_counts(out_positions=14 * 14)
    print(f"\nUCNN G={group_size}: engine and per-entry walk bit-exact vs dense")
    print(f"  multiplies    {counts.multiplies:>10,}  (dense {counts.dense_multiplies:,},"
          f" {counts.multiply_savings:.1f}x fewer)")
    print(f"  input reads   {counts.input_reads:>10,}  (G filters share each read)")
    print(f"  weight reads  {counts.weight_reads:>10,}  (dense {counts.dense_multiplies:,})")
    print(f"  measured      {walk_s * 1e3:>8.1f} ms per-entry walk -> "
          f"{engine_s * 1e3:.2f} ms compiled engine ({walk_s / engine_s:.0f}x faster)")

print("\nDone — weight repetition turned most multiplies into adds, and the")
print("compiled segment scan turned the factorized walk into the fast path.")
