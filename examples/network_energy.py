"""Scenario: energy analysis of a full network across design points.

Reproduces the Figure 9 methodology on one network of your choice:
simulates every design (DCNN, DCNN_sp, UCNN U3/U17/U64/U256) on identical
synthetic weights and prints the DRAM / L2 / PE energy breakdown,
normalized to DCNN — the same bar groups the paper plots.

Run:  python examples/network_energy.py [lenet|alexnet|resnet50] [density]
"""

import sys

from repro.arch.config import paper_configs
from repro.experiments.common import (
    INPUT_DENSITY,
    format_table,
    network_shapes,
    uniform_weight_provider,
)
from repro.sim.runner import simulate_network


def main(network: str = "lenet", density: float = 0.5, bits: int = 16) -> None:
    shapes = network_shapes(network)
    print(f"{network}: {len(shapes)} conv layers, "
          f"{sum(s.num_weights for s in shapes) / 1e6:.1f}M weights, "
          f"{density:.0%} weight density, {bits}-bit, "
          f"{INPUT_DENSITY:.0%} input density\n")

    results = []
    for config in paper_configs(bits):
        u = config.num_unique if config.is_ucnn else 256
        provider = uniform_weight_provider(u, density)
        result = simulate_network(
            shapes, config, weight_provider=provider,
            weight_density=density, input_density=INPUT_DENSITY)
        results.append((config, result))

    base = next(r for c, r in results if c.name == "DCNN").energy.total_pj
    rows = []
    for config, result in results:
        e = result.energy
        rows.append((
            config.name,
            e.dram_pj / base, e.l2_pj / base, e.pe_pj / base, e.total_pj / base,
            f"{result.cycles:,}",
            f"{result.model_size.bits_per_weight:.1f}",
        ))
    print(format_table(
        ("design", "DRAM", "L2/NoC", "PE", "total (vs DCNN)", "cycles", "bits/weight"),
        rows,
    ))
    sp = next(r for c, r in results if c.name == "DCNN_sp").energy.total_pj
    best = min(results, key=lambda cr: cr[1].energy.total_pj)
    print(f"\nbest design: {best[0].name} — "
          f"{sp / best[1].energy.total_pj:.2f}x less energy than DCNN_sp "
          f"(paper band for this sweep: 1.2x - 4x)")


if __name__ == "__main__":
    network = sys.argv[1] if len(sys.argv) > 1 else "lenet"
    density = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(network, density)
