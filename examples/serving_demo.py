"""Serving demo: an in-process `repro serve` instance under live load.

Starts the async batched server on an ephemeral port (thread-mode
shards, fresh cache directory), fires two closed-loop passes of mixed
design-point requests at it, and prints what the serving layer is for:

1. the cold pass pays for every distinct point once (misses fan out
   across the consistent-hash shard pool, duplicates coalesce), and
2. the warm pass answers everything from the content-addressed result
   cache — no worker touched, latency collapses.

Along the way it verifies one served value against a direct in-process
call: the response is bit-identical (see docs/api.md, "Parity").

Run:  python examples/serving_demo.py
"""

import tempfile

from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerHandle,
    default_mix,
    resolve,
    run_load,
)

config = ServeConfig(
    port=0,                      # ephemeral: the OS picks a free port
    workers=2,                   # two shard workers
    mode="thread",               # in-process shards (demo-friendly)
    max_batch=8,                 # micro-batcher size trigger
    max_delay_ms=2.0,            # ... and time trigger
    cache_dir=tempfile.mkdtemp(prefix="repro-serving-demo-"),
)

with ServerHandle(config) as handle:
    print(f"serving on 127.0.0.1:{handle.port} "
          f"({config.workers} {config.mode} shards)\n")

    # One request by hand: a Figure 11 design point over the wire, and
    # the same point computed directly — bit-identical values.
    kwargs = dict(network="lenet", layer_index=0, group_size=2, density=0.5)
    with ServeClient(port=handle.port) as client:
        served = client.request("runtime_point", **kwargs)
    direct = resolve("runtime_point")(**kwargs)
    assert served.value == direct, "serve-vs-direct parity broke!"
    print(f"runtime_point{tuple(kwargs.values())} = {served.value:.6f}"
          f"  (served == direct: {served.value == direct})")

    # Two closed-loop passes of the same 60-request mixed workload.
    mix = default_mix(60)
    for name in ("cold", "warm"):
        result = run_load("127.0.0.1", handle.port, mix, concurrency=6)
        s = result.stats
        print(f"\n{name} pass: {s.requests} requests in {s.seconds:.2f}s "
              f"({s.throughput_rps:.0f} req/s)")
        print(f"  hit rate {s.hit_rate:.0%}  coalesced {s.coalesced_rate:.0%}")
        print(f"  latency p50 {s.p50_ms:.2f} ms   p90 {s.p90_ms:.2f} ms   "
              f"p99 {s.p99_ms:.2f} ms")

    stats = handle.stats()
    print(f"\nserver totals: {stats['requests']} served — {stats['hits']} cache hits, "
          f"{stats['misses']} computed ({stats['batches']} batches), "
          f"{stats['coalesced']} coalesced")
    print(f"per-shard computed counts: {stats['per_shard']}")
