"""Scenario: the conflict-free banked input buffer (Section IV-D).

UCNN reads VW activations per cycle through one shared indirection —
possible only because Equations 3-4 place the VW spatial slides of any
tile coordinate (r, s, c) in VW *different* banks.  This script builds
the layout for the paper's UCNN U17 design point (VW = 4), streams random
indirections through it, and verifies zero bank conflicts plus the
bounded storage waste the paper derives.

Run:  python examples/banking_demo.py
"""

import numpy as np

from repro.arch.banking import BankedLayout, simulate_vector_reads
from repro.arch.buffers import channel_tile
from repro.arch.config import ucnn_config
from repro.nn.tensor import ConvShape

config = ucnn_config(17, 16)
layer = ConvShape(name="res3x3", w=14, h=14, c=256, k=256, r=3, s=3, padding=1)
ct = channel_tile(layer, config)
layout = BankedLayout(r=layer.r, s=layer.s, channel_tile=ct, vw=config.vw)

print(f"design point: {config.name} (VW={config.vw} banks), layer {layer.name}")
print(f"channel tile Ct = {ct}, resident input columns = {layout.input_columns}")
print(f"bank words = {layout.bank_words}, wasted address fraction = "
      f"{layout.wasted_fraction:.1%} (paper: always < 2x, zero for VW=2/R=3)")

print("\nEq. 3 bank assignment per tap column r (each row is a permutation):")
for r in range(layer.r):
    print(f"  r={r}: slides 0..{config.vw - 1} -> banks {list(layout.banks_for_vector(r))}")

rng = np.random.default_rng(0)
n = 10_000
stream = np.stack([
    rng.integers(0, layer.r, size=n),
    rng.integers(0, layer.s, size=n),
    rng.integers(0, ct, size=n),
], axis=1)
conflicts = simulate_vector_reads(layout, stream)
print(f"\nstreamed {n:,} random indirections x {config.vw} slides: {conflicts} bank conflicts")
assert conflicts == 0

special = BankedLayout(r=3, s=3, channel_tile=ct, vw=2)
print(f"\npaper's special case VW=2, R=3: wasted fraction = {special.wasted_fraction:.1%}")
