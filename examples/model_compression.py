"""Scenario: how small does UCNN make your model in DRAM?

Quantizes synthetic networks at several densities and compares the DRAM
footprint of UCNN's indirection-table format (pointer and jump modes,
several G) against DCNN_sp's run-length encoding and the raw TTQ / INQ
codes — the Figure 13 / 14 story as a user-facing tool.

Run:  python examples/model_compression.py [lenet|alexnet|resnet50]
"""

import sys

from repro.experiments import fig13_model_size
from repro.experiments.common import format_table, network_shapes


def main(network: str = "lenet") -> None:
    shapes = network_shapes(network)
    dense_weights = sum(s.num_weights for s in shapes)
    print(f"{network}: {dense_weights / 1e6:.2f}M conv weights\n")

    result = fig13_model_size.run(network=network, densities=(0.3, 0.5, 0.7, 0.9))
    schemes = ("UCNN G1", "UCNN G2", "UCNN G4", "DCNN_sp 8b", "TTQ", "INQ")
    rows = []
    for density in (0.3, 0.5, 0.7, 0.9):
        row = [f"{density:.0%}"]
        for scheme in schemes:
            bits = result.at(scheme, density)
            megabytes = bits * dense_weights / 8 / 1e6
            row.append(f"{bits:.1f}b ({megabytes:.1f}MB)")
        rows.append(tuple(row))
    print(format_table(("density",) + schemes, rows))

    print("\nNotes: UCNN G=4 pairs with TTQ-style U=3 weights, G<=2 with")
    print("INQ-style U=17; model size counts iiT+wiT tables, skip entries")
    print("and the unique-weight list, normalized per dense weight.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "lenet")
