"""Reproduce the paper's Figure 7 walkthrough, cycle by cycle.

Figure 7 shows activation group reuse for G = 2 filters with weights
{a, b} over eight inputs {x, y, z, k, h, l, m, n}:

    filter k1:  a*(z + m + l + y + h) + b*(n + k + x)
    filter k2:  a*(z + m) + b*(l + y + h) + a*(n) + b*(k + x)

A DCNN with two lanes needs 16 multiplies; UCNN completes both dot
products in 6 multiplies with one shared, hierarchically-sorted input
indirection table.  This script builds those exact tables, steps the
UCNN lane simulator through them, and prints what happens each cycle.

Run:  python examples/figure7_walkthrough.py
"""

import numpy as np

from repro.core.hierarchical import build_filter_group_tables
from repro.sim.functional import DcnnLaneSimulator, UcnnLaneSimulator

# Concrete values for the symbolic weights; |a| > |b| so the canonical
# order (descending magnitude) visits a's groups first, as Figure 7 does.
A, B = 3, 2
NAMES = ["x", "y", "z", "k", "h", "l", "m", "n"]

# Weight layout over the eight input positions (matching Figure 7):
#   k1 = a*(z+m+l+y+h) + b*(n+k+x) ; k2 = a*(z+m) + b*(l+y+h) + a*n + b*(k+x)
#          x  y  z  k  h  l  m  n
k1 = np.array([B, A, A, B, A, A, A, B])
k2 = np.array([B, B, A, B, B, B, A, A])
filters = np.stack([k1, k2])

inputs = np.array([7, -3, 4, 10, 1, -6, 2, 5])  # x, y, z, k, h, l, m, n

tables = build_filter_group_tables(filters)
print("canonical weight order:", list(tables.canonical), f" (a={A}, b={B})")
print("\nshared iiT traversal (hierarchically sorted):")
print(f"{'step':>4} {'input':>6} {'k1 wt':>6} {'k2 wt':>6} {'k1 wiT':>7} {'k2 wiT':>7}")
for t in range(tables.num_entries):
    idx = tables.iit[t]
    print(f"{t:>4} {NAMES[idx]:>6} "
          f"{'a' if k1[idx] == A else 'b':>6} {'a' if k2[idx] == A else 'b':>6} "
          f"{int(tables.transitions[0, t]):>7} {int(tables.transitions[1, t]):>7}")

ucnn_trace = UcnnLaneSimulator(tables).run(inputs)
dcnn_trace = DcnnLaneSimulator(filters).run(inputs)

print("\nresults:")
print(f"  k1 = {ucnn_trace.outputs[0]}, k2 = {ucnn_trace.outputs[1]} "
      f"(dense: {dcnn_trace.outputs[0]}, {dcnn_trace.outputs[1]})")
assert np.array_equal(ucnn_trace.outputs, dcnn_trace.outputs)

print("\narithmetic (the paper counts 16 DCNN multiplies vs 6 for UCNN):")
print(f"  DCNN multiplies: {dcnn_trace.multiplies}")
print(f"  UCNN multiplies: {ucnn_trace.multiplies}")
print(f"  UCNN cycles: {ucnn_trace.cycles} "
      f"({ucnn_trace.entry_cycles} entries + {ucnn_trace.stall_cycles} multiplier stalls"
      f" + {ucnn_trace.bubble_cycles} skip bubbles)")
assert dcnn_trace.multiplies == 16
assert ucnn_trace.multiplies == 6

# ----------------------------------------------------------------------
# The compiled engine: the same tables, lowered to a segment-scan
# program and executed over many windows at once.
# ----------------------------------------------------------------------
import time

from repro.engine import table_program_for

program = table_program_for(tables)
print("\ncompiled table program (the engine's lowering of the same tables):")
print("  " + program.describe().replace("\n", "\n  "))
assert np.array_equal(program.run_window(inputs), ucnn_trace.outputs)
print("  single-window engine run matches the lane simulator: "
      f"k1 = {program.run_window(inputs)[0]}, k2 = {program.run_window(inputs)[1]}")

batch = np.random.default_rng(7).integers(-9, 10, size=(4096, 8))
start = time.perf_counter()
engine_out = program.run(batch)
engine_s = time.perf_counter() - start
start = time.perf_counter()
walk_out = np.stack([tables.execute(w) for w in batch], axis=1)
walk_s = time.perf_counter() - start
assert np.array_equal(engine_out, walk_out)
print(f"\nover {batch.shape[0]:,} windows (6 multiplies each vs 16 dense):")
print(f"  per-entry walk: {walk_s * 1e3:7.1f} ms")
print(f"  compiled engine:{engine_s * 1e3:7.2f} ms  ({walk_s / engine_s:.0f}x faster, same bits)")
