"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for PEP
517 editable installs; this shim enables the legacy path
(``pip install -e . --no-use-pep517 --no-build-isolation`` or
``python setup.py develop``) on offline machines.  Configuration lives in
pyproject.toml.
"""

from setuptools import setup

setup()
